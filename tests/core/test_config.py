"""Unit tests for the architectural template configuration."""

import pytest

from repro.core.config import (
    Activation,
    Dataflow,
    GemminiConfig,
    big_sp_config,
    config_from_dict,
    default_config,
    edge_config,
    fig9_base_config,
    fp32_config,
    systolic_config,
    vector_config,
)
from repro.core.dtypes import FP32, INT8, INT32
from repro.mem.tlb import TLBConfig


class TestGeometry:
    def test_default_is_paper_config(self):
        cfg = default_config()
        assert cfg.dim == 16
        assert cfg.sp_capacity_bytes == 256 * 1024
        assert cfg.acc_capacity_bytes == 64 * 1024
        assert cfg.num_pes == 256

    def test_derived_rows(self):
        cfg = default_config()
        assert cfg.sp_row_bytes == 16  # 16 int8 elements
        assert cfg.sp_rows == 16384
        assert cfg.acc_row_bytes == 64  # 16 int32 elements
        assert cfg.acc_rows == 1024

    def test_two_level_grid(self):
        cfg = GemminiConfig(mesh_rows=4, mesh_cols=2, tile_rows=2, tile_cols=4)
        assert cfg.grid_rows == 8
        assert cfg.grid_cols == 8
        assert cfg.dim == 8

    def test_systolic_vs_vector_same_pes(self):
        sys = systolic_config(16)
        vec = vector_config(16)
        assert sys.num_pes == vec.num_pes == 256
        assert sys.pipeline_depth > vec.pipeline_depth

    def test_non_square_grid_rejected(self):
        with pytest.raises(ValueError):
            GemminiConfig(mesh_rows=4, mesh_cols=2)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            GemminiConfig(sp_capacity_bytes=1000)

    def test_mixed_int_float_rejected(self):
        with pytest.raises(ValueError):
            GemminiConfig(input_type=INT8, acc_type=FP32)

    def test_bus_width_power_of_two(self):
        with pytest.raises(ValueError):
            GemminiConfig(dma_bus_bytes=12)


class TestDataflowEnum:
    def test_both_supports_each(self):
        assert Dataflow.BOTH.supports(Dataflow.WS)
        assert Dataflow.BOTH.supports(Dataflow.OS)

    def test_single_dataflow_exclusive(self):
        assert Dataflow.WS.supports(Dataflow.WS)
        assert not Dataflow.WS.supports(Dataflow.OS)


class TestVariants:
    def test_with_memories(self):
        cfg = default_config().with_memories(sp_capacity_bytes=512 * 1024)
        assert cfg.sp_capacity_bytes == 512 * 1024
        assert cfg.acc_capacity_bytes == 64 * 1024

    def test_with_tlb(self):
        tlb = TLBConfig(private_entries=4, shared_entries=0)
        cfg = default_config().with_tlb(tlb)
        assert cfg.tlb.private_entries == 4

    def test_with_im2col(self):
        assert default_config().with_im2col(True).has_im2col

    def test_edge_config(self):
        cfg = edge_config(private_tlb_entries=4, filter_registers=True)
        assert cfg.tlb.private_entries == 4
        assert cfg.tlb.filter_registers
        assert cfg.sp_capacity_bytes == 256 * 1024

    def test_fig9_configs(self):
        base = fig9_base_config()
        big = big_sp_config()
        assert base.acc_capacity_bytes == 256 * 1024
        assert big.sp_capacity_bytes == 512 * 1024

    def test_fp32_config(self):
        cfg = fp32_config()
        assert cfg.input_type is FP32

    def test_describe_mentions_geometry(self):
        text = default_config().describe()
        assert "16x16" in text
        assert "256KB" in text


class TestFromDict:
    def test_round_trip_fields(self):
        cfg = config_from_dict(
            {
                "mesh_rows": 8,
                "mesh_cols": 8,
                "input_type": "int8",
                "acc_type": "int32",
                "dataflow": "WS",
                "tlb": {"private_entries": 8, "shared_entries": 32},
            }
        )
        assert cfg.dim == 8
        assert cfg.input_type is INT8
        assert cfg.acc_type is INT32
        assert cfg.dataflow is Dataflow.WS
        assert cfg.tlb.private_entries == 8

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ValueError):
            config_from_dict({"input_type": "int7"})


class TestActivationEnum:
    def test_members(self):
        assert Activation.NONE.value == "none"
        assert Activation.RELU6.value == "relu6"
