"""Unit tests for the DMA engine."""

import pytest

from repro.core.dma import DMAEngine
from repro.mem.hierarchy import MemorySystem, MemorySystemConfig
from repro.mem.page_table import VirtualMemory
from repro.mem.tlb import TLBConfig, TranslationSystem


def make_dma(small_config, private=16, shared=0, filters=False, vm=None):
    tlb_cfg = TLBConfig(
        private_entries=private, shared_entries=shared, filter_registers=filters
    )
    xlat = TranslationSystem(tlb_cfg)
    mem = MemorySystem(MemorySystemConfig())
    dma = DMAEngine(small_config, xlat, mem, vm=vm)
    return dma, xlat, mem


class TestDMATransfers:
    def test_basic_read(self, small_config):
        dma, xlat, mem = make_dma(small_config)
        result = dma.transfer(0.0, 0x10000, 64, 16, 64, is_write=False)
        assert result.bytes_moved == 1024
        assert result.end_time > result.start_time
        assert mem.dram.stats.value("reads") > 0

    def test_one_translation_per_page_per_row(self, small_config):
        dma, xlat, __ = make_dma(small_config)
        # 16 rows of 64 B inside one page: 16 translation requests.
        result = dma.transfer(0.0, 0x10000, 64, 16, 64, False)
        assert result.tlb_requests == 16

    def test_page_crossing_row_translates_twice(self, small_config):
        dma, __, __mem = make_dma(small_config)
        result = dma.transfer(0.0, 0x10FE0, 64, 1, 64, False)  # straddles 4K
        assert result.tlb_requests == 2

    def test_write_uses_write_channel(self, small_config):
        dma, __, __mem = make_dma(small_config)
        dma.transfer(0.0, 0x1000, 64, 4, 64, True)
        assert dma.write_channel.bookings == 4
        assert dma.read_channel.bookings == 0
        assert dma.stats.value("bytes_written") == 256

    def test_read_write_channels_overlap(self, small_config):
        dma, __, __mem = make_dma(small_config)
        r = dma.transfer(0.0, 0x1000, 256, 8, 256, False)
        w = dma.transfer(0.0, 0x8000, 256, 8, 256, True)
        # The write channel did not queue behind the read channel.
        assert w.start_time < r.end_time

    def test_tlb_miss_stalls_transfer(self, small_config):
        dma_cold, __, __m = make_dma(small_config, private=16)
        cold = dma_cold.transfer(0.0, 0x10000, 64, 16, 64, False)
        dma_warm, xlat_warm, __m2 = make_dma(small_config, private=16)
        for vpn in range(0x10, 0x12):
            xlat_warm.translate_vpn(0.0, vpn, False)
        warm = dma_warm.transfer(1000.0, 0x10000, 64, 16, 64, False)
        assert warm.translation_stall < cold.translation_stall

    def test_filter_registers_reduce_stall(self, small_config):
        plain, __, __m = make_dma(small_config, private=1)
        filt, __, __m2 = make_dma(small_config, private=1, filters=True)
        a = plain.transfer(0.0, 0x10000, 64, 32, 64, False)
        b = filt.transfer(0.0, 0x10000, 64, 32, 64, False)
        assert b.translation_stall < a.translation_stall

    def test_virtual_to_physical_translation(self, small_config):
        vm = VirtualMemory(scattered=True)
        vaddr = vm.alloc(4096 * 2, "buf")
        dma, __, mem = make_dma(small_config, vm=vm)
        dma.transfer(0.0, vaddr, 64, 4, 64, False)
        # Physical accesses hit the scattered frames, not the virtual range.
        assert mem.l2.stats.value("accesses") > 0

    def test_invalid_transfer_rejected(self, small_config):
        dma, __, __m = make_dma(small_config)
        with pytest.raises(ValueError):
            dma.transfer(0.0, 0, 0, 4, 64, False)
        with pytest.raises(ValueError):
            dma.transfer(0.0, 0, 64, 0, 64, False)

    def test_wider_bus_is_faster(self, small_config):
        from dataclasses import replace

        narrow_cfg = replace(small_config, dma_bus_bytes=4)
        wide_cfg = replace(small_config, dma_bus_bytes=64)
        narrow, __, __m = make_dma(narrow_cfg)
        wide, __, __m2 = make_dma(wide_cfg)
        t_narrow = narrow.transfer(0.0, 0x1000, 256, 64, 256, False)
        t_wide = wide.transfer(0.0, 0x1000, 256, 64, 256, False)
        assert t_wide.cycles < t_narrow.cycles

    def test_strided_rows_touch_more_pages(self, small_config):
        dense, __, __m = make_dma(small_config)
        sparse, __, __m2 = make_dma(small_config)
        d = dense.transfer(0.0, 0x10000, 64, 16, 64, False)
        s = sparse.transfer(0.0, 0x10000, 64, 16, 8192, False)
        assert s.tlb_requests == d.tlb_requests  # same count...
        # ...but sparse touches 16 distinct pages: all misses.
        assert sparse.xlat.stats.value("walks") > dense.xlat.stats.value("walks")


class TestDMAStats:
    def test_counters(self, small_config):
        dma, __, __m = make_dma(small_config)
        dma.transfer(0.0, 0x1000, 32, 4, 32, False)
        assert dma.stats.value("rows") == 4
        assert dma.stats.value("transfers") == 1
        assert dma.stats.value("bytes_read") == 128


class TestTranslationSerialisation:
    """The TLB is single-ported: rows' translations chain (Section V-A)."""

    def test_miss_burst_throttles_stream(self, small_config):
        # Every row in a new page: each walk serialises behind the last.
        dma, xlat, __ = make_dma(small_config, private=2)
        result = dma.transfer(0.0, 0x100000, 64, 8, 4096, False)
        walks = xlat.stats.value("walks")
        assert walks == 8
        # The stream cannot finish faster than the serialised walks.
        assert result.end_time >= walks * xlat.config.walk_latency

    def test_hits_do_not_serialise_painfully(self, small_config):
        # Same page every row: one walk, then cheap private hits.
        dma, xlat, __ = make_dma(small_config, private=16)
        result = dma.transfer(0.0, 0x100000, 64, 8, 64, False)
        assert xlat.stats.value("walks") == 1
        assert result.end_time < 8 * xlat.config.walk_latency

    def test_warm_tlb_faster_than_cold(self, small_config):
        cold, __, __m = make_dma(small_config, private=64)
        a = cold.transfer(0.0, 0x100000, 64, 16, 4096, False)
        warm, xlat, __m2 = make_dma(small_config, private=64)
        for vpn in range(0x100, 0x110):
            xlat.translate_vpn(0.0, vpn, False)
        b = warm.transfer(1e6, 0x100000, 64, 16, 4096, False)
        assert b.cycles < a.cycles
