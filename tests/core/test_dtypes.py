"""Unit tests for hardware datatypes and rounding shifts."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dtypes import (
    BF16,
    FP32,
    INT8,
    dtype_by_name,
    rounding_right_shift,
)


class TestDType:
    def test_int8_bounds(self):
        assert INT8.min_value == -128
        assert INT8.max_value == 127
        assert INT8.bytes == 1

    def test_saturate_clamps(self):
        values = np.array([-1000, -128, 0, 127, 1000], dtype=np.int64)
        out = INT8.saturate(values)
        assert out.dtype == np.int8
        assert list(out) == [-128, -128, 0, 127, 127]

    def test_saturate_rounds(self):
        values = np.array([1.4, 1.5, 2.5, -1.5])
        out = INT8.saturate(values)
        # Round half to even (numpy rint).
        assert list(out) == [1, 2, 2, -2]

    def test_float_saturate_is_cast(self):
        values = np.array([1e30, -1e30])
        out = FP32.saturate(values)
        assert out.dtype == np.float32

    def test_bf16_storage_width(self):
        assert BF16.bytes == 2
        assert BF16.is_float

    def test_lookup_by_name(self):
        assert dtype_by_name("int8") is INT8
        assert dtype_by_name("fp32") is FP32
        with pytest.raises(ValueError):
            dtype_by_name("int7")


class TestRoundingShift:
    def test_zero_shift_identity(self):
        values = np.array([1, 2, 3])
        assert rounding_right_shift(values, 0) is values

    def test_simple_shift(self):
        values = np.array([4, 8, 12], dtype=np.int64)
        assert list(rounding_right_shift(values, 2)) == [1, 2, 3]

    def test_round_half_to_even(self):
        # 2 >> 2 = 0.5 -> rounds to 0 (even); 6 >> 2 = 1.5 -> rounds to 2.
        values = np.array([2, 6], dtype=np.int64)
        assert list(rounding_right_shift(values, 2)) == [0, 2]

    def test_above_half_rounds_up(self):
        values = np.array([3], dtype=np.int64)  # 0.75 -> 1
        assert list(rounding_right_shift(values, 2)) == [1]

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            rounding_right_shift(np.array([1]), -1)

    @given(
        st.lists(st.integers(min_value=-(1 << 30), max_value=1 << 30), min_size=1, max_size=20),
        st.integers(min_value=1, max_value=16),
    )
    def test_shift_matches_true_division_within_half(self, values, shift):
        array = np.array(values, dtype=np.int64)
        out = rounding_right_shift(array, shift)
        exact = array / (1 << shift)
        assert np.all(np.abs(out - exact) <= 0.5 + 1e-9)
