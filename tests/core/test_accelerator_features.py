"""Feature tests for the ISA executor: transposes, scaling, shrink loads.

Complements ``test_accelerator.py`` with the optional-datapath features the
template generates: the transposer (required by the OS dataflow and for
transposed operands), the matrix-scalar multiplier on MVIN, shrunk
(int8-into-accumulator) loads, and accumulator scale on MVOUT.
"""

import numpy as np
import pytest

from repro.core import isa
from repro.core.accelerator import Accelerator
from repro.core.isa import LocalAddr

DIM = 4


@pytest.fixture
def accel(small_config):
    return Accelerator(small_config)


def load(accel, vaddr, mat, dtype=np.int8):
    accel.host.write_matrix(vaddr, mat.astype(dtype), mat.shape[1] * np.dtype(dtype).itemsize)


class TestTransposes:
    def test_transpose_a(self, accel, rng):
        a = rng.integers(-6, 6, size=(DIM, DIM)).astype(np.int8)
        b = rng.integers(-6, 6, size=(DIM, DIM)).astype(np.int8)
        load(accel, 0x1000, a)
        load(accel, 0x2000, b)
        program = [
            isa.config_ex(dataflow_ws=True, transpose_a=True),
            isa.config_ld(stride_bytes=DIM),
            isa.config_st(stride_bytes=DIM),
            isa.mvin(0x1000, LocalAddr.sp(0), DIM, DIM),
            isa.mvin(0x2000, LocalAddr.sp(4), DIM, DIM),
            isa.preload(LocalAddr.sp(4), LocalAddr.acc(0), DIM, DIM, DIM, DIM),
            isa.compute_preloaded(LocalAddr.sp(0), LocalAddr.garbage_addr(), DIM, DIM, DIM, DIM),
            isa.mvout(0x3000, LocalAddr.acc(0), DIM, DIM),
            isa.fence(),
        ]
        accel.run_program(program)
        out = accel.host.read_matrix(0x3000, DIM, DIM, DIM, np.int8)
        expected = np.clip(a.T.astype(np.int32) @ b.astype(np.int32), -128, 127)
        assert (out == expected.astype(np.int8)).all()

    def test_transpose_b(self, accel, rng):
        a = rng.integers(-6, 6, size=(DIM, DIM)).astype(np.int8)
        b = rng.integers(-6, 6, size=(DIM, DIM)).astype(np.int8)
        load(accel, 0x1000, a)
        load(accel, 0x2000, b)
        program = [
            isa.config_ex(dataflow_ws=True, transpose_b=True),
            isa.config_ld(stride_bytes=DIM),
            isa.config_st(stride_bytes=DIM),
            isa.mvin(0x1000, LocalAddr.sp(0), DIM, DIM),
            isa.mvin(0x2000, LocalAddr.sp(4), DIM, DIM),
            isa.preload(LocalAddr.sp(4), LocalAddr.acc(0), DIM, DIM, DIM, DIM),
            isa.compute_preloaded(LocalAddr.sp(0), LocalAddr.garbage_addr(), DIM, DIM, DIM, DIM),
            isa.mvout(0x3000, LocalAddr.acc(0), DIM, DIM),
            isa.fence(),
        ]
        accel.run_program(program)
        out = accel.host.read_matrix(0x3000, DIM, DIM, DIM, np.int8)
        expected = np.clip(a.astype(np.int32) @ b.T.astype(np.int32), -128, 127)
        assert (out == expected.astype(np.int8)).all()


class TestLoadPath:
    def test_mvin_scale(self, accel):
        data = np.full((DIM, DIM), 10, dtype=np.int8)
        load(accel, 0x1000, data)
        program = [
            isa.config_ld(stride_bytes=DIM, scale=0.5),
            isa.mvin(0x1000, LocalAddr.sp(0), DIM, DIM),
            isa.fence(),
        ]
        accel.run_program(program)
        __, stored = accel.scratchpad.read(0.0, 0, DIM)
        assert (stored == 5).all()

    def test_mvin_shrink_loads_int8_into_acc(self, accel):
        data = np.full((DIM, DIM), 7, dtype=np.int8)
        load(accel, 0x1000, data)
        program = [
            isa.config_ld(stride_bytes=DIM, shrink=True),
            isa.mvin(0x1000, LocalAddr.acc(0), DIM, DIM),
            isa.fence(),
        ]
        accel.run_program(program)
        __, stored = accel.accumulator.read_raw(0.0, 0, DIM)
        assert stored.dtype == np.int32
        assert (stored == 7).all()

    def test_mvin_accumulate_into_acc(self, accel):
        bias = np.full((DIM, DIM), 3, dtype=np.int32)
        accel.host.write_matrix(0x1000, bias, DIM * 4)
        program = [
            isa.config_ld(stride_bytes=DIM * 4),
            isa.mvin(0x1000, LocalAddr.acc(0), DIM, DIM),
            isa.mvin(0x1000, LocalAddr.acc(0, accumulate=True), DIM, DIM),
            isa.fence(),
        ]
        accel.run_program(program)
        __, stored = accel.accumulator.read_raw(0.0, 0, DIM)
        assert (stored == 6).all()

    def test_scale_without_matscalar_rejected(self, small_config):
        from dataclasses import replace

        accel = Accelerator(replace(small_config, has_matscalar=False))
        accel.host.write_matrix(0x1000, np.ones((2, 2), dtype=np.int8), 2)
        program = [
            isa.config_ld(stride_bytes=2, scale=0.5),
            isa.mvin(0x1000, LocalAddr.sp(0), 2, 2),
        ]
        with pytest.raises(ValueError):
            accel.run_program(program)


class TestStorePath:
    def test_acc_scale_on_mvout(self, accel):
        values = np.full((DIM, DIM), 100, dtype=np.int32)
        accel.host.write_matrix(0x1000, values, DIM * 4)
        program = [
            isa.config_ex(dataflow_ws=True, acc_scale=0.25),
            isa.config_ld(stride_bytes=DIM * 4),
            isa.config_st(stride_bytes=DIM),
            isa.mvin(0x1000, LocalAddr.acc(0), DIM, DIM),
            isa.mvout(0x3000, LocalAddr.acc(0), DIM, DIM),
            isa.fence(),
        ]
        accel.run_program(program)
        out = accel.host.read_matrix(0x3000, DIM, DIM, DIM, np.int8)
        assert (out == 25).all()

    def test_read_full_keeps_int32(self, accel):
        values = np.full((DIM, DIM), 70000, dtype=np.int32)
        accel.host.write_matrix(0x1000, values, DIM * 4)
        program = [
            isa.config_ld(stride_bytes=DIM * 4),
            isa.config_st(stride_bytes=DIM * 4),
            isa.mvin(0x1000, LocalAddr.acc(0), DIM, DIM),
            isa.mvout(0x3000, LocalAddr.acc(0, read_full=True), DIM, DIM),
            isa.fence(),
        ]
        accel.run_program(program)
        out = accel.host.read_matrix(0x3000, DIM, DIM, DIM * 4, np.int32)
        assert (out == 70000).all()

    def test_pooled_mvout_unsupported_at_isa_level(self, accel):
        program = [
            isa.config_st(stride_bytes=DIM, pool_size=2, pool_stride=2),
            isa.mvout(0x3000, LocalAddr.sp(0), DIM, DIM),
        ]
        with pytest.raises(NotImplementedError):
            accel.run_program(program)


class TestErrorPaths:
    def test_mvin_to_garbage_rejected(self, accel):
        with pytest.raises(ValueError):
            accel.run_program([isa.mvin(0, LocalAddr.garbage_addr(), 2, 2)])

    def test_mvin_too_wide_rejected(self, accel):
        with pytest.raises(ValueError):
            accel.run_program([
                isa.config_ld(stride_bytes=64),
                isa.mvin(0x1000, LocalAddr.sp(0), DIM + 1, 1),
            ])

    def test_mvout_from_garbage_rejected(self, accel):
        with pytest.raises(ValueError):
            accel.run_program([isa.mvout(0, LocalAddr.garbage_addr(), 2, 2)])
