"""End-to-end ISA-level tests: programs in, NumPy-checked results out."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import isa
from repro.core.accelerator import Accelerator
from repro.core.config import GemminiConfig
from repro.core.isa import LocalAddr


DIM = 4


@pytest.fixture
def accel(small_config):
    return Accelerator(small_config)


def load_matrix(accel, vaddr, matrix, dtype=np.int8):
    accel.host.write_matrix(vaddr, matrix.astype(dtype), matrix.shape[1] * np.dtype(dtype).itemsize)


def ws_matmul_program(a_vaddr, b_vaddr, c_vaddr, m=DIM):
    """A simple single-block WS matmul: C = A @ B via the accumulator."""
    return [
        isa.config_ex(dataflow_ws=True),
        isa.config_ld(stride_bytes=DIM),
        isa.config_st(stride_bytes=DIM),
        isa.mvin(a_vaddr, LocalAddr.sp(0), DIM, m),
        isa.mvin(b_vaddr, LocalAddr.sp(16), DIM, DIM),
        isa.preload(LocalAddr.sp(16), LocalAddr.acc(0), DIM, DIM, DIM, m),
        isa.compute_preloaded(
            LocalAddr.sp(0), LocalAddr.garbage_addr(), DIM, m, DIM, DIM
        ),
        isa.mvout(c_vaddr, LocalAddr.acc(0), DIM, m),
        isa.fence(),
    ]


class TestWSMatmul:
    def test_single_block(self, accel, rng):
        a = rng.integers(-8, 8, size=(DIM, DIM)).astype(np.int8)
        b = rng.integers(-8, 8, size=(DIM, DIM)).astype(np.int8)
        load_matrix(accel, 0x1000, a)
        load_matrix(accel, 0x2000, b)
        result = accel.run_program(ws_matmul_program(0x1000, 0x2000, 0x3000))
        out = accel.host.read_matrix(0x3000, DIM, DIM, DIM, np.int8)
        expected = np.int8(np.clip(a.astype(np.int32) @ b.astype(np.int32), -128, 127))
        assert (out == expected).all()
        assert result.cycles > 0
        assert result.instructions == 9

    def test_partial_rows(self, accel, rng):
        m = 2
        a = rng.integers(-8, 8, size=(m, DIM)).astype(np.int8)
        b = rng.integers(-8, 8, size=(DIM, DIM)).astype(np.int8)
        load_matrix(accel, 0x1000, a)
        load_matrix(accel, 0x2000, b)
        accel.run_program(ws_matmul_program(0x1000, 0x2000, 0x3000, m=m))
        out = accel.host.read_matrix(0x3000, m, DIM, DIM, np.int8)
        expected = np.int8(np.clip(a.astype(np.int32) @ b.astype(np.int32), -128, 127))
        assert (out == expected).all()

    def test_accumulate_bit_sums_two_matmuls(self, accel, rng):
        a1 = rng.integers(-4, 4, size=(DIM, DIM)).astype(np.int8)
        b1 = rng.integers(-4, 4, size=(DIM, DIM)).astype(np.int8)
        a2 = rng.integers(-4, 4, size=(DIM, DIM)).astype(np.int8)
        b2 = rng.integers(-4, 4, size=(DIM, DIM)).astype(np.int8)
        for vaddr, mat in [(0x1000, a1), (0x2000, b1), (0x4000, a2), (0x5000, b2)]:
            load_matrix(accel, vaddr, mat)
        program = [
            isa.config_ex(dataflow_ws=True),
            isa.config_ld(stride_bytes=DIM),
            isa.config_st(stride_bytes=DIM),
            isa.mvin(0x1000, LocalAddr.sp(0), DIM, DIM),
            isa.mvin(0x2000, LocalAddr.sp(4), DIM, DIM),
            isa.mvin(0x4000, LocalAddr.sp(8), DIM, DIM),
            isa.mvin(0x5000, LocalAddr.sp(12), DIM, DIM),
            isa.preload(LocalAddr.sp(4), LocalAddr.acc(0), DIM, DIM, DIM, DIM),
            isa.compute_preloaded(
                LocalAddr.sp(0), LocalAddr.garbage_addr(), DIM, DIM, DIM, DIM
            ),
            isa.preload(LocalAddr.sp(12), LocalAddr.acc(0, accumulate=True), DIM, DIM, DIM, DIM),
            isa.compute_preloaded(
                LocalAddr.sp(8), LocalAddr.garbage_addr(), DIM, DIM, DIM, DIM
            ),
            isa.mvout(0x6000, LocalAddr.acc(0), DIM, DIM),
            isa.fence(),
        ]
        accel.run_program(program)
        out = accel.host.read_matrix(0x6000, DIM, DIM, DIM, np.int8)
        expected = a1.astype(np.int32) @ b1.astype(np.int32) + a2.astype(
            np.int32
        ) @ b2.astype(np.int32)
        assert (out == np.clip(expected, -128, 127).astype(np.int8)).all()

    def test_weight_reuse_with_compute_accumulate(self, accel, rng):
        """COMPUTE_ACCUMULATE reuses the active weights (no re-preload)."""
        a1 = rng.integers(-4, 4, size=(DIM, DIM)).astype(np.int8)
        a2 = rng.integers(-4, 4, size=(DIM, DIM)).astype(np.int8)
        b = rng.integers(-4, 4, size=(DIM, DIM)).astype(np.int8)
        for vaddr, mat in [(0x1000, a1), (0x2000, b), (0x4000, a2)]:
            load_matrix(accel, vaddr, mat)
        program = [
            isa.config_ex(dataflow_ws=True),
            isa.config_ld(stride_bytes=DIM),
            isa.config_st(stride_bytes=DIM),
            isa.mvin(0x1000, LocalAddr.sp(0), DIM, DIM),
            isa.mvin(0x2000, LocalAddr.sp(4), DIM, DIM),
            isa.mvin(0x4000, LocalAddr.sp(8), DIM, DIM),
            isa.preload(LocalAddr.sp(4), LocalAddr.acc(0), DIM, DIM, DIM, DIM),
            isa.compute_preloaded(
                LocalAddr.sp(0), LocalAddr.garbage_addr(), DIM, DIM, DIM, DIM
            ),
            # Reuse B for a second A block, output to a second acc region.
            isa.preload(LocalAddr.garbage_addr(), LocalAddr.acc(4), 0, 0, DIM, DIM),
            isa.compute_accumulate(
                LocalAddr.sp(8), LocalAddr.garbage_addr(), DIM, DIM, DIM, DIM
            ),
            isa.mvout(0x6000, LocalAddr.acc(0), DIM, DIM),
            isa.mvout(0x7000, LocalAddr.acc(4), DIM, DIM),
            isa.fence(),
        ]
        accel.run_program(program)
        out1 = accel.host.read_matrix(0x6000, DIM, DIM, DIM, np.int8)
        out2 = accel.host.read_matrix(0x7000, DIM, DIM, DIM, np.int8)
        e1 = np.clip(a1.astype(np.int32) @ b.astype(np.int32), -128, 127).astype(np.int8)
        e2 = np.clip(a2.astype(np.int32) @ b.astype(np.int32), -128, 127).astype(np.int8)
        assert (out1 == e1).all()
        assert (out2 == e2).all()

    def test_bias_via_mvin_to_acc(self, accel, rng):
        a = rng.integers(-4, 4, size=(DIM, DIM)).astype(np.int8)
        b = rng.integers(-4, 4, size=(DIM, DIM)).astype(np.int8)
        bias = rng.integers(-100, 100, size=(DIM, DIM)).astype(np.int32)
        load_matrix(accel, 0x1000, a)
        load_matrix(accel, 0x2000, b)
        accel.host.write_matrix(0x3000, bias, DIM * 4)
        program = [
            isa.config_ex(dataflow_ws=True),
            isa.config_ld(stride_bytes=DIM * 4),
            isa.mvin(0x3000, LocalAddr.acc(0), DIM, DIM),  # bias into acc
            isa.config_ld(stride_bytes=DIM),
            isa.config_st(stride_bytes=DIM),
            isa.mvin(0x1000, LocalAddr.sp(0), DIM, DIM),
            isa.mvin(0x2000, LocalAddr.sp(4), DIM, DIM),
            isa.preload(LocalAddr.sp(4), LocalAddr.acc(0, accumulate=True), DIM, DIM, DIM, DIM),
            isa.compute_preloaded(
                LocalAddr.sp(0), LocalAddr.garbage_addr(), DIM, DIM, DIM, DIM
            ),
            isa.mvout(0x6000, LocalAddr.acc(0), DIM, DIM),
            isa.fence(),
        ]
        accel.run_program(program)
        out = accel.host.read_matrix(0x6000, DIM, DIM, DIM, np.int8)
        expected = bias + a.astype(np.int32) @ b.astype(np.int32)
        assert (out == np.clip(expected, -128, 127).astype(np.int8)).all()

    def test_relu_on_mvout(self, accel, rng):
        a = -np.eye(DIM, dtype=np.int8) * 8
        b = np.eye(DIM, dtype=np.int8)
        load_matrix(accel, 0x1000, a)
        load_matrix(accel, 0x2000, b)
        program = [isa.config_ex(dataflow_ws=True, activation=1)] + ws_matmul_program(
            0x1000, 0x2000, 0x3000
        )[1:]
        accel.run_program(program)
        out = accel.host.read_matrix(0x3000, DIM, DIM, DIM, np.int8)
        assert (out >= 0).all()

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=10000))
    @settings(max_examples=10)
    def test_random_shapes_and_seeds(self, m, seed):
        cfg = GemminiConfig(
            mesh_rows=4, mesh_cols=4, tile_rows=1, tile_cols=1,
            sp_capacity_bytes=4 * 4 * 256, sp_banks=2,
            acc_capacity_bytes=4 * 16 * 64, acc_banks=2,
        )
        accel = Accelerator(cfg)
        rng = np.random.default_rng(seed)
        a = rng.integers(-8, 8, size=(m, DIM)).astype(np.int8)
        b = rng.integers(-8, 8, size=(DIM, DIM)).astype(np.int8)
        load_matrix(accel, 0x1000, a)
        load_matrix(accel, 0x2000, b)
        accel.run_program(ws_matmul_program(0x1000, 0x2000, 0x3000, m=m))
        out = accel.host.read_matrix(0x3000, m, DIM, DIM, np.int8)
        expected = np.clip(a.astype(np.int32) @ b.astype(np.int32), -128, 127)
        assert (out == expected.astype(np.int8)).all()


class TestOSMatmul:
    def test_os_single_block(self, accel, rng):
        a = rng.integers(-8, 8, size=(DIM, DIM)).astype(np.int8)
        b = rng.integers(-8, 8, size=(DIM, DIM)).astype(np.int8)
        load_matrix(accel, 0x1000, a)
        load_matrix(accel, 0x2000, b)
        program = [
            isa.config_ex(dataflow_ws=False),
            isa.config_ld(stride_bytes=DIM),
            isa.config_st(stride_bytes=DIM),
            isa.mvin(0x1000, LocalAddr.sp(0), DIM, DIM),
            isa.mvin(0x2000, LocalAddr.sp(4), DIM, DIM),
            isa.preload(LocalAddr.garbage_addr(), LocalAddr.acc(0), DIM, DIM, DIM, DIM),
            isa.compute_preloaded(LocalAddr.sp(0), LocalAddr.sp(4), DIM, DIM, DIM, DIM),
            isa.flush(),
            isa.mvout(0x3000, LocalAddr.acc(0), DIM, DIM),
            isa.fence(),
        ]
        accel.run_program(program)
        out = accel.host.read_matrix(0x3000, DIM, DIM, DIM, np.int8)
        expected = np.clip(a.astype(np.int32) @ b.astype(np.int32), -128, 127)
        assert (out == expected.astype(np.int8)).all()

    def test_os_k_accumulation(self, accel, rng):
        """Two COMPUTEs accumulate into the resident C before draining."""
        a1 = rng.integers(-4, 4, size=(DIM, DIM)).astype(np.int8)
        b1 = rng.integers(-4, 4, size=(DIM, DIM)).astype(np.int8)
        a2 = rng.integers(-4, 4, size=(DIM, DIM)).astype(np.int8)
        b2 = rng.integers(-4, 4, size=(DIM, DIM)).astype(np.int8)
        for vaddr, mat in [(0x1000, a1), (0x2000, b1), (0x4000, a2), (0x5000, b2)]:
            load_matrix(accel, vaddr, mat)
        program = [
            isa.config_ex(dataflow_ws=False),
            isa.config_ld(stride_bytes=DIM),
            isa.config_st(stride_bytes=DIM),
            isa.mvin(0x1000, LocalAddr.sp(0), DIM, DIM),
            isa.mvin(0x2000, LocalAddr.sp(4), DIM, DIM),
            isa.mvin(0x4000, LocalAddr.sp(8), DIM, DIM),
            isa.mvin(0x5000, LocalAddr.sp(12), DIM, DIM),
            isa.preload(LocalAddr.garbage_addr(), LocalAddr.acc(0), DIM, DIM, DIM, DIM),
            isa.compute_preloaded(LocalAddr.sp(0), LocalAddr.sp(4), DIM, DIM, DIM, DIM),
            isa.compute_accumulate(LocalAddr.sp(8), LocalAddr.sp(12), DIM, DIM, DIM, DIM),
            isa.flush(),
            isa.mvout(0x6000, LocalAddr.acc(0), DIM, DIM),
            isa.fence(),
        ]
        accel.run_program(program)
        out = accel.host.read_matrix(0x6000, DIM, DIM, DIM, np.int8)
        expected = a1.astype(np.int32) @ b1.astype(np.int32) + a2.astype(
            np.int32
        ) @ b2.astype(np.int32)
        assert (out == np.clip(expected, -128, 127).astype(np.int8)).all()


class TestDataflowsAgree:
    def test_ws_os_same_result(self, rng):
        cfg_kwargs = dict(
            mesh_rows=4, mesh_cols=4, tile_rows=1, tile_cols=1,
            sp_capacity_bytes=4 * 4 * 256, sp_banks=2,
            acc_capacity_bytes=4 * 16 * 64, acc_banks=2,
        )
        a = rng.integers(-8, 8, size=(DIM, DIM)).astype(np.int8)
        b = rng.integers(-8, 8, size=(DIM, DIM)).astype(np.int8)

        ws = Accelerator(GemminiConfig(**cfg_kwargs))
        load_matrix(ws, 0x1000, a)
        load_matrix(ws, 0x2000, b)
        ws.run_program(ws_matmul_program(0x1000, 0x2000, 0x3000))
        ws_out = ws.host.read_matrix(0x3000, DIM, DIM, DIM, np.int8)

        os_accel = Accelerator(GemminiConfig(**cfg_kwargs))
        load_matrix(os_accel, 0x1000, a)
        load_matrix(os_accel, 0x2000, b)
        program = [
            isa.config_ex(dataflow_ws=False),
            isa.config_ld(stride_bytes=DIM),
            isa.config_st(stride_bytes=DIM),
            isa.mvin(0x1000, LocalAddr.sp(0), DIM, DIM),
            isa.mvin(0x2000, LocalAddr.sp(4), DIM, DIM),
            isa.preload(LocalAddr.garbage_addr(), LocalAddr.acc(0), DIM, DIM, DIM, DIM),
            isa.compute_preloaded(LocalAddr.sp(0), LocalAddr.sp(4), DIM, DIM, DIM, DIM),
            isa.flush(),
            isa.mvout(0x3000, LocalAddr.acc(0), DIM, DIM),
            isa.fence(),
        ]
        os_accel.run_program(program)
        os_out = os_accel.host.read_matrix(0x3000, DIM, DIM, DIM, np.int8)
        assert (ws_out == os_out).all()


class TestTimingBehaviour:
    def test_mvin_compute_overlap(self, small_config, rng):
        """Loads to independent buffers overlap with compute (decoupling)."""
        accel = Accelerator(small_config)
        a = rng.integers(-4, 4, size=(DIM, DIM)).astype(np.int8)
        for vaddr in (0x1000, 0x2000, 0x4000, 0x5000):
            load_matrix(accel, vaddr, a)
        serial_cycles = 0.0
        program = [
            isa.config_ex(dataflow_ws=True),
            isa.config_ld(stride_bytes=DIM),
            isa.config_st(stride_bytes=DIM),
            isa.mvin(0x1000, LocalAddr.sp(0), DIM, DIM),
            isa.mvin(0x2000, LocalAddr.sp(4), DIM, DIM),
            isa.preload(LocalAddr.sp(4), LocalAddr.acc(0), DIM, DIM, DIM, DIM),
            isa.compute_preloaded(LocalAddr.sp(0), LocalAddr.garbage_addr(), DIM, DIM, DIM, DIM),
            # Next tile's loads: same program order, independent buffers.
            isa.mvin(0x4000, LocalAddr.sp(8), DIM, DIM),
            isa.mvin(0x5000, LocalAddr.sp(12), DIM, DIM),
            isa.fence(),
        ]
        result = accel.run_program(program)
        assert result.cycles > serial_cycles

    def test_dependent_compute_waits_for_mvin(self, small_config, rng):
        accel = Accelerator(small_config)
        a = rng.integers(-4, 4, size=(DIM, DIM)).astype(np.int8)
        load_matrix(accel, 0x1000, a)
        load_matrix(accel, 0x2000, a)
        result = accel.run_program(ws_matmul_program(0x1000, 0x2000, 0x3000))
        # DMA for two tiles takes >= 100 cycles through DRAM; compute must
        # have waited (total >> pure compute time of ~4 cycles).
        assert result.cycles > 100

    def test_config_errors(self, small_config):
        from dataclasses import replace
        from repro.core.config import Dataflow

        accel = Accelerator(replace(small_config, dataflow=Dataflow.WS))
        with pytest.raises(ValueError):
            accel.run_program([isa.config_ex(dataflow_ws=False)])

        accel2 = Accelerator(replace(small_config, has_transposer=False))
        with pytest.raises(ValueError):
            accel2.run_program([isa.config_ex(dataflow_ws=True, transpose_a=True)])

    def test_reset_restores_initial_state(self, small_config, rng):
        accel = Accelerator(small_config)
        a = rng.integers(-4, 4, size=(DIM, DIM)).astype(np.int8)
        load_matrix(accel, 0x1000, a)
        load_matrix(accel, 0x2000, a)
        accel.run_program(ws_matmul_program(0x1000, 0x2000, 0x3000))
        accel.reset()
        assert accel.controller.now == 0.0
        assert accel.stats.value("instructions") == 0
