"""Unit tests for the scoreboard and the decoupled controller."""

import pytest

from repro.core.controller import Controller, Op, Scoreboard


class TestScoreboard:
    def test_raw_hazard(self):
        sb = Scoreboard()
        sb.commit(reads=(), writes=("x",), read_end=10.0)
        assert sb.earliest_start(reads=("x",), writes=()) == 10.0

    def test_war_hazard(self):
        sb = Scoreboard()
        sb.commit(reads=("x",), writes=(), read_end=7.0)
        assert sb.earliest_start(reads=(), writes=("x",)) == 7.0

    def test_waw_hazard(self):
        sb = Scoreboard()
        sb.commit(reads=(), writes=("x",), read_end=5.0)
        assert sb.earliest_start(reads=(), writes=("x",)) == 5.0

    def test_independent_tokens_no_hazard(self):
        sb = Scoreboard()
        sb.commit(reads=(), writes=("x",), read_end=10.0)
        assert sb.earliest_start(reads=("y",), writes=("z",)) == 0.0

    def test_read_read_no_hazard(self):
        sb = Scoreboard()
        sb.commit(reads=("x",), writes=(), read_end=10.0)
        assert sb.earliest_start(reads=("x",), writes=()) == 0.0

    def test_split_read_write_commit_times(self):
        sb = Scoreboard()
        sb.commit(reads=("r",), writes=("w",), read_end=5.0, write_end=20.0)
        assert sb.earliest_start(reads=("w",), writes=()) == 20.0
        assert sb.earliest_start(reads=(), writes=("r",)) == 5.0

    def test_latest_time_wins(self):
        sb = Scoreboard()
        sb.commit(reads=(), writes=("x",), read_end=10.0)
        sb.commit(reads=(), writes=("x",), read_end=5.0)
        assert sb.earliest_start(reads=("x",), writes=()) == 10.0


class TestController:
    def test_independent_units_overlap(self):
        ctl = Controller()
        ops = [
            Op(unit="load", cycles=100.0, writes=("a",)),
            Op(unit="store", cycles=100.0, reads=("b",)),
        ]
        result = ctl.execute(ops)
        # Both finish around 100 cycles, not 200: they overlapped.
        assert result.end_time < 150.0

    def test_same_unit_serializes(self):
        ctl = Controller()
        ops = [
            Op(unit="load", cycles=100.0, writes=("a",)),
            Op(unit="load", cycles=100.0, writes=("b",)),
        ]
        result = ctl.execute(ops)
        assert result.end_time >= 200.0

    def test_raw_dependency_serializes_across_units(self):
        ctl = Controller()
        ops = [
            Op(unit="load", cycles=100.0, writes=("tile",)),
            Op(unit="exec", cycles=50.0, reads=("tile",), writes=("out",)),
        ]
        result = ctl.execute(ops)
        assert result.end_time >= 150.0

    def test_double_buffering_overlaps(self):
        """The classic pattern: load B while computing on A."""
        ctl = Controller()
        ops = [
            Op(unit="load", cycles=100.0, writes=("A",)),
            Op(unit="exec", cycles=100.0, reads=("A",), writes=("outA",)),
            Op(unit="load", cycles=100.0, writes=("B",)),  # overlaps exec on A
            Op(unit="exec", cycles=100.0, reads=("B",), writes=("outB",)),
        ]
        result = ctl.execute(ops)
        assert result.end_time == pytest.approx(300.0, abs=10.0)

    def test_war_blocks_buffer_reuse(self):
        ctl = Controller()
        ops = [
            Op(unit="load", cycles=10.0, writes=("A",)),
            Op(unit="exec", cycles=100.0, reads=("A",)),
            Op(unit="load", cycles=10.0, writes=("A",)),  # must wait for exec
        ]
        result = ctl.execute(ops)
        assert result.end_time >= 120.0

    def test_write_latency_defers_visibility(self):
        ctl = Controller()
        ops = [
            Op(unit="exec", cycles=10.0, writes=("C",), write_latency=20.0),
            Op(unit="store", cycles=5.0, reads=("C",)),
        ]
        result = ctl.execute(ops)
        assert result.end_time >= 35.0

    def test_barrier_waits_for_all(self):
        ctl = Controller()
        ops = [
            Op(unit="load", cycles=100.0, writes=("a",)),
            Op(unit="exec", cycles=30.0),
            Op(unit="exec", barrier=True),
            Op(unit="exec", cycles=1.0),
        ]
        result = ctl.execute(ops)
        assert result.end_time >= 101.0

    def test_rob_backpressure(self):
        narrow = Controller(rob_entries=1)
        wide = Controller(rob_entries=64)

        def ops():
            loads = [Op(unit="load", cycles=50.0, writes=(f"l{i}",)) for i in range(4)]
            execs = [Op(unit="exec", cycles=50.0, reads=(f"l{i}",)) for i in range(4)]
            return loads + execs

        t_narrow = narrow.execute(ops()).end_time
        t_wide = wide.execute(ops()).end_time
        assert t_narrow >= t_wide

    def test_run_callback_op(self):
        ctl = Controller()
        seen = []

        def run(start):
            seen.append(start)
            return start + 42.0

        result = ctl.execute([Op(unit="load", run=run)])
        assert len(seen) == 1
        assert result.end_time >= 42.0

    def test_run_returning_past_raises(self):
        ctl = Controller()
        with pytest.raises(ValueError):
            ctl.execute([Op(unit="load", run=lambda start: start - 1.0)])

    def test_op_validation(self):
        with pytest.raises(ValueError):
            Op(unit="load")  # neither cycles nor run
        with pytest.raises(ValueError):
            Op(unit="load", cycles=1.0, run=lambda s: s)  # both
        with pytest.raises(ValueError):
            Op(unit="warp", cycles=1.0)  # unknown unit

    def test_drain_returns_quiesce_time(self):
        ctl = Controller()
        ctl.execute([Op(unit="load", cycles=100.0)])
        assert ctl.drain() >= 100.0

    def test_dispatch_cost_accumulates(self):
        ctl = Controller(dispatch_cycles=1.0)
        result = ctl.execute([Op(unit="exec", cycles=0.0) for __ in range(10)])
        assert result.end_time >= 10.0

    def test_reset(self):
        ctl = Controller()
        ctl.execute([Op(unit="load", cycles=10.0, writes=("a",))])
        ctl.reset()
        assert ctl.now == 0.0
        assert ctl.scoreboard.earliest_start(("a",), ()) == 0.0
