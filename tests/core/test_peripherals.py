"""Unit tests for the peripheral compute blocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dtypes import INT8
from repro.core.peripherals import (
    ConvParams,
    Im2colUnit,
    MatrixScalarUnit,
    PoolingEngine,
    PoolParams,
    Transposer,
    conv_reference,
    im2col,
)


class TestConvParams:
    def test_output_dims(self):
        p = ConvParams(in_h=8, in_w=8, in_ch=3, out_ch=4, kernel=3, stride=1, padding=1)
        assert p.out_h == 8
        assert p.out_w == 8
        assert p.patch_size == 27
        assert p.num_patches == 64

    def test_strided_output(self):
        p = ConvParams(in_h=8, in_w=8, in_ch=1, out_ch=1, kernel=3, stride=2, padding=0)
        assert p.out_h == 3

    def test_macs(self):
        p = ConvParams(in_h=4, in_w=4, in_ch=2, out_ch=3, kernel=2)
        assert p.macs == p.num_patches * p.patch_size * 3

    def test_empty_output_rejected(self):
        with pytest.raises(ValueError):
            ConvParams(in_h=2, in_w=2, in_ch=1, out_ch=1, kernel=3)


class TestIm2col:
    def test_identity_1x1_kernel(self, rng):
        p = ConvParams(in_h=3, in_w=3, in_ch=2, out_ch=1, kernel=1)
        image = rng.integers(-8, 8, size=(3, 3, 2)).astype(np.int8)
        patches = im2col(image, p)
        assert patches.shape == (9, 2)
        assert (patches == image.reshape(9, 2)).all()

    def test_padding_zeros(self):
        p = ConvParams(in_h=2, in_w=2, in_ch=1, out_ch=1, kernel=3, padding=1)
        image = np.ones((2, 2, 1), dtype=np.int8)
        patches = im2col(image, p)
        # Corner patch has 4 ones (the image corner) and 5 zeros.
        assert patches[0].sum() == 4

    def test_shape_mismatch_rejected(self):
        p = ConvParams(in_h=4, in_w=4, in_ch=1, out_ch=1, kernel=2)
        with pytest.raises(ValueError):
            im2col(np.zeros((3, 3, 1), dtype=np.int8), p)

    @given(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=2),
        st.integers(min_value=0, max_value=1),
    )
    @settings(max_examples=12)
    def test_conv_reference_equals_direct_loops(self, kernel, stride, padding):
        rng = np.random.default_rng(kernel * 10 + stride)
        in_h = in_w = 5
        in_ch, out_ch = 2, 3
        try:
            p = ConvParams(in_h, in_w, in_ch, out_ch, kernel, stride, padding)
        except ValueError:
            return
        image = rng.integers(-4, 4, size=(in_h, in_w, in_ch)).astype(np.int32)
        weights = rng.integers(-4, 4, size=(p.patch_size, out_ch)).astype(np.int32)
        got = conv_reference(image, weights, p)

        # Direct 6-loop convolution.
        padded = np.pad(image, ((padding, padding), (padding, padding), (0, 0)))
        w4 = weights.reshape(kernel, kernel, in_ch, out_ch)
        expected = np.zeros((p.out_h, p.out_w, out_ch))
        for oy in range(p.out_h):
            for ox in range(p.out_w):
                for ky in range(kernel):
                    for kx in range(kernel):
                        for ci in range(in_ch):
                            for co in range(out_ch):
                                expected[oy, ox, co] += (
                                    padded[oy * stride + ky, ox * stride + kx, ci]
                                    * w4[ky, kx, ci, co]
                                )
        assert np.allclose(got, expected)

    def test_unit_cycles(self):
        unit = Im2colUnit(dim=16)
        assert unit.patch_rows_cycles(100) == 100
        assert unit.patch_rows_cycles(0) == 1


class TestTransposer:
    def test_transpose(self, rng):
        t = Transposer(4)
        block = rng.integers(0, 10, size=(4, 4))
        assert (t.transpose(block) == block.T).all()

    def test_rejects_non_2d(self):
        t = Transposer(4)
        with pytest.raises(ValueError):
            t.transpose(np.zeros(4))

    def test_cycles(self):
        assert Transposer(16).cycles() == 16


class TestPooling:
    def test_max_pool_2x2(self):
        engine = PoolingEngine(4)
        image = np.arange(16, dtype=np.int8).reshape(4, 4, 1)
        params = PoolParams(size=2, stride=2, in_h=4, in_w=4)
        out = engine.max_pool(image, params)
        assert out.shape == (2, 2, 1)
        assert list(out[..., 0].reshape(-1)) == [5, 7, 13, 15]

    def test_overlapping_windows(self):
        engine = PoolingEngine(4)
        image = np.arange(16, dtype=np.int8).reshape(4, 4, 1)
        params = PoolParams(size=3, stride=1, in_h=4, in_w=4)
        out = engine.max_pool(image, params)
        assert out.shape == (2, 2, 1)
        assert out[0, 0, 0] == 10

    def test_multichannel_independent(self, rng):
        engine = PoolingEngine(4)
        image = rng.integers(-50, 50, size=(4, 4, 3)).astype(np.int8)
        params = PoolParams(size=2, stride=2, in_h=4, in_w=4)
        out = engine.max_pool(image, params)
        for c in range(3):
            expected = engine.max_pool(image[:, :, c : c + 1], params)
            assert (out[:, :, c] == expected[:, :, 0]).all()

    def test_cycles_scale_with_output(self):
        engine = PoolingEngine(16)
        small = engine.cycles(PoolParams(2, 2, 8, 8), channels=16)
        large = engine.cycles(PoolParams(2, 2, 16, 16), channels=16)
        assert large > small

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            PoolParams(size=0, stride=1, in_h=4, in_w=4)
        with pytest.raises(ValueError):
            PoolParams(size=5, stride=1, in_h=4, in_w=4)


class TestMatrixScalar:
    def test_scale_saturates(self):
        unit = MatrixScalarUnit(4)
        block = np.array([[100, -100]], dtype=np.int8)
        out = unit.scale(block, 2.0, INT8)
        assert list(out[0]) == [127, -128]

    def test_scale_rounds(self):
        unit = MatrixScalarUnit(4)
        block = np.array([[5]], dtype=np.int8)
        out = unit.scale(block, 0.5, INT8)
        assert out[0, 0] == 2  # 2.5 rounds half-to-even

    def test_cycles(self):
        assert MatrixScalarUnit(4).cycles(7) == 7
