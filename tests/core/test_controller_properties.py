"""Property tests: the decoupled controller against reference bounds.

For random op sequences, the controller's completion time must be
(a) no later than fully serial execution — decoupling can only help — and
(b) no earlier than both the per-unit busy-time bound and the dependency
critical path.  Together these bracket the scheduler's legal behaviour.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controller import Controller, Op

TOKENS = ["a", "b", "c", "d"]

op_strategy = st.builds(
    lambda unit, cycles, reads, writes: Op(
        unit=unit,
        cycles=float(cycles),
        reads=tuple(reads),
        writes=tuple(writes),
    ),
    unit=st.sampled_from(["load", "exec", "store"]),
    cycles=st.integers(min_value=1, max_value=50),
    reads=st.sets(st.sampled_from(TOKENS), max_size=2),
    writes=st.sets(st.sampled_from(TOKENS), max_size=2),
)


def serial_end(ops, dispatch=1.0):
    """Reference: fully serialised execution."""
    return sum(op.cycles + dispatch for op in ops)


def unit_busy_bound(ops):
    """Lower bound: the busiest unit's total work."""
    busy = {"load": 0.0, "exec": 0.0, "store": 0.0}
    for op in ops:
        busy[op.unit] += op.cycles
    return max(busy.values())


def critical_path_bound(ops):
    """Lower bound: the longest dependency chain through the tokens."""
    ready: dict[str, float] = {}
    finish_prev = 0.0
    for op in ops:
        start = 0.0
        for token in op.reads:
            start = max(start, ready.get(token, 0.0))
        for token in op.writes:
            start = max(start, ready.get(token, 0.0))
        end = start + op.cycles
        for token in op.writes:
            ready[token] = end
        finish_prev = max(finish_prev, end)
    return finish_prev


class TestControllerBounds:
    @given(st.lists(op_strategy, min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_never_slower_than_serial(self, ops):
        controller = Controller(rob_entries=64)
        result = controller.execute(ops)
        end = controller.drain()
        assert end <= serial_end(ops) + 1e-6
        assert result.ops_executed == len(ops)

    @given(st.lists(op_strategy, min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_respects_unit_busy_bound(self, ops):
        controller = Controller(rob_entries=64, dispatch_cycles=0.0)
        controller.execute(ops)
        end = controller.drain()
        assert end >= unit_busy_bound(ops) - 1e-6

    @given(st.lists(op_strategy, min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_respects_dependency_critical_path(self, ops):
        controller = Controller(rob_entries=64, dispatch_cycles=0.0)
        controller.execute(ops)
        end = controller.drain()
        assert end >= critical_path_bound(ops) - 1e-6

    @given(st.lists(op_strategy, min_size=1, max_size=20))
    @settings(max_examples=30)
    def test_smaller_rob_never_faster(self, ops):
        tight = Controller(rob_entries=1)
        wide = Controller(rob_entries=64)
        tight.execute(list(ops))
        wide.execute(list(ops))
        assert tight.drain() >= wide.drain() - 1e-6
