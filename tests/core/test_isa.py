"""Unit and property tests for the RoCC ISA encodings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import isa
from repro.core.isa import (
    ConfigTarget,
    Funct,
    GARBAGE_ADDR,
    Instruction,
    LocalAddr,
)


local_addrs = st.builds(
    LocalAddr,
    row=st.integers(min_value=0, max_value=(1 << 29) - 1),
    is_acc=st.booleans(),
    accumulate=st.booleans(),
    read_full=st.booleans(),
    garbage=st.just(False),
)

dims16 = st.integers(min_value=0, max_value=(1 << 16) - 1)


class TestLocalAddr:
    def test_sp_helper(self):
        addr = LocalAddr.sp(100)
        assert not addr.is_acc
        assert addr.encode() == 100

    def test_acc_helper_sets_bits(self):
        addr = LocalAddr.acc(5, accumulate=True)
        encoded = addr.encode()
        assert encoded & (1 << 31)
        assert encoded & (1 << 30)
        assert encoded & ((1 << 29) - 1) == 5

    def test_garbage_encodes_all_ones(self):
        assert LocalAddr.garbage_addr().encode() == GARBAGE_ADDR

    def test_decode_garbage(self):
        assert LocalAddr.decode(GARBAGE_ADDR).garbage

    def test_row_out_of_range(self):
        with pytest.raises(ValueError):
            LocalAddr(row=1 << 29).encode()

    @given(local_addrs)
    def test_encode_decode_round_trip(self, addr):
        assert LocalAddr.decode(addr.encode()) == addr


class TestMoveEncoding:
    def test_mvin_fields(self):
        inst = isa.mvin(0xDEAD0000, LocalAddr.sp(42), cols=16, rows=8)
        assert inst.funct is Funct.MVIN
        decoded = isa.decode_move(inst)
        assert decoded.dram_vaddr == 0xDEAD0000
        assert decoded.local.row == 42
        assert decoded.cols == 16
        assert decoded.rows == 8

    def test_mvout_to_acc(self):
        inst = isa.mvout(0x1000, LocalAddr.acc(7, read_full=True), cols=4, rows=4)
        decoded = isa.decode_move(inst)
        assert decoded.local.is_acc
        assert decoded.local.read_full

    def test_dims_out_of_range(self):
        with pytest.raises(ValueError):
            isa.mvin(0, LocalAddr.sp(0), cols=1 << 16, rows=1)

    def test_decode_wrong_funct_raises(self):
        with pytest.raises(ValueError):
            isa.decode_move(isa.flush())

    @given(
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        local_addrs, dims16, dims16,
    )
    def test_move_round_trip(self, vaddr, local, cols, rows):
        inst = isa.mvin(vaddr, local, cols, rows)
        decoded = isa.decode_move(inst)
        assert decoded.dram_vaddr == vaddr
        assert decoded.local == local
        assert decoded.cols == cols
        assert decoded.rows == rows


class TestComputeEncoding:
    @given(local_addrs, local_addrs, dims16, dims16, dims16, dims16)
    def test_compute_round_trip(self, a, bd, ac, ar, bc, br):
        inst = isa.compute_preloaded(a, bd, ac, ar, bc, br)
        decoded = isa.decode_compute(inst)
        assert decoded.a == a
        assert decoded.bd == bd
        assert (decoded.a_cols, decoded.a_rows) == (ac, ar)
        assert (decoded.bd_cols, decoded.bd_rows) == (bc, br)

    def test_accumulate_variant(self):
        inst = isa.compute_accumulate(
            LocalAddr.sp(0), LocalAddr.garbage_addr(), 4, 4, 4, 4
        )
        assert inst.funct is Funct.COMPUTE_ACCUMULATE
        assert isa.decode_compute(inst).bd.garbage

    @given(local_addrs, local_addrs, dims16, dims16, dims16, dims16)
    def test_preload_round_trip(self, b, c, bc, br, cc, cr):
        inst = isa.preload(b, c, bc, br, cc, cr)
        decoded = isa.decode_preload(inst)
        assert decoded.b == b
        assert decoded.c == c
        assert (decoded.b_cols, decoded.b_rows) == (bc, br)
        assert (decoded.c_cols, decoded.c_rows) == (cc, cr)


class TestConfigEncoding:
    def test_config_targets(self):
        assert isa.config_target(isa.config_ex(True)) is ConfigTarget.EX
        assert isa.config_target(isa.config_ld(16)) is ConfigTarget.LD
        assert isa.config_target(isa.config_st(16)) is ConfigTarget.ST

    def test_config_ex_round_trip(self):
        inst = isa.config_ex(
            dataflow_ws=True,
            activation=2,
            in_shift=9,
            transpose_a=True,
            transpose_b=False,
            acc_scale=0.5,
        )
        decoded = isa.decode_config_ex(inst)
        assert decoded.dataflow_ws
        assert decoded.activation == 2
        assert decoded.in_shift == 9
        assert decoded.transpose_a and not decoded.transpose_b
        assert decoded.acc_scale == pytest.approx(0.5)

    def test_config_ld_round_trip(self):
        inst = isa.config_ld(stride_bytes=224, scale=0.25, shrink=True)
        decoded = isa.decode_config_ld(inst)
        assert decoded.stride_bytes == 224
        assert decoded.scale == pytest.approx(0.25)
        assert decoded.shrink

    def test_config_st_round_trip(self):
        inst = isa.config_st(stride_bytes=64, pool_size=2, pool_stride=2, pool_out_cols=56)
        decoded = isa.decode_config_st(inst)
        assert decoded.stride_bytes == 64
        assert decoded.pool_size == 2
        assert decoded.pool_stride == 2
        assert decoded.pool_out_cols == 56

    def test_cross_decode_rejected(self):
        with pytest.raises(ValueError):
            isa.decode_config_ex(isa.config_ld(16))
        with pytest.raises(ValueError):
            isa.decode_config_ld(isa.config_st(16))

    def test_activation_field_bounds(self):
        with pytest.raises(ValueError):
            isa.config_ex(True, activation=4)

    @given(st.floats(min_value=2.0 ** -20, max_value=2.0 ** 20, allow_nan=False, width=32))
    def test_scale_survives_float_bits(self, scale):
        decoded = isa.decode_config_ex(isa.config_ex(True, acc_scale=scale))
        assert decoded.acc_scale == pytest.approx(scale, rel=1e-6)


class TestInstruction:
    def test_operands_masked_to_64_bits(self):
        inst = Instruction(Funct.FLUSH, rs1=1 << 70, rs2=-1)
        assert inst.rs1 == (1 << 70) & ((1 << 64) - 1)
        assert inst.rs2 == (1 << 64) - 1

    def test_fence_flush_builders(self):
        assert isa.fence().funct is Funct.FENCE
        assert isa.flush().funct is Funct.FLUSH
