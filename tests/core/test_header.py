"""Unit tests for the generated C params header."""

from repro.core.config import default_config, systolic_config, vector_config
from repro.core.header import emit_params_header, parse_params_header


class TestHeaderEmission:
    def test_contains_guard(self):
        text = emit_params_header(default_config())
        assert text.startswith("#ifndef GEMMINI_PARAMS_H")
        assert text.rstrip().endswith("#endif // GEMMINI_PARAMS_H")

    def test_dim_and_memories(self):
        values = parse_params_header(emit_params_header(default_config()))
        assert values["DIM"] == 16
        assert values["BANK_NUM"] == 4
        assert values["BANK_ROWS"] == 4096
        assert values["ACC_ROWS"] == 1024
        assert values["SP_CAPACITY_BYTES"] == 256 * 1024

    def test_types_for_int8(self):
        values = parse_params_header(emit_params_header(default_config()))
        assert values["HAS_POOLING"] == 1
        assert values["SUPPORTS_WS"] == 1
        assert values["SUPPORTS_OS"] == 1

    def test_elem_type_line(self):
        text = emit_params_header(default_config())
        assert "typedef int8_t elem_t;" in text
        assert "typedef int32_t acc_t;" in text

    def test_mesh_geometry(self):
        sys_vals = parse_params_header(emit_params_header(systolic_config()))
        vec_vals = parse_params_header(emit_params_header(vector_config()))
        assert sys_vals["MESH_ROWS"] == 16 and sys_vals["TILE_ROWS"] == 1
        assert vec_vals["MESH_ROWS"] == 1 and vec_vals["TILE_ROWS"] == 16

    def test_tlb_parameters(self):
        from repro.core.config import edge_config

        cfg = edge_config(private_tlb_entries=4, shared_tlb_entries=512, filter_registers=True)
        values = parse_params_header(emit_params_header(cfg))
        assert values["TLB_PRIVATE_ENTRIES"] == 4
        assert values["TLB_SHARED_ENTRIES"] == 512
        assert values["TLB_FILTER_REGISTERS"] == 1

    def test_custom_guard(self):
        text = emit_params_header(default_config(), guard="MY_GUARD_H")
        assert "#ifndef MY_GUARD_H" in text

    def test_fp32_types(self):
        from repro.core.config import fp32_config

        text = emit_params_header(fp32_config())
        assert "typedef float elem_t;" in text
