"""Unit tests for the accumulator SRAM and output pipeline."""

import numpy as np
import pytest

from repro.core.accumulator import Accumulator, apply_activation
from repro.core.config import Activation


class TestActivationFunctions:
    def test_none_identity(self):
        values = np.array([-5, 0, 5])
        assert (apply_activation(values, Activation.NONE) == values).all()

    def test_relu(self):
        values = np.array([-5, 0, 5])
        assert list(apply_activation(values, Activation.RELU)) == [0, 0, 5]

    def test_relu6(self):
        values = np.array([-5, 3, 9])
        assert list(apply_activation(values, Activation.RELU6)) == [0, 3, 6]


class TestAccumulatorWrites:
    def test_overwrite(self, small_config, rng):
        acc = Accumulator(small_config)
        data = rng.integers(-1000, 1000, size=(4, 4)).astype(np.int32)
        acc.write(0.0, 0, data, accumulate=False)
        __, out = acc.read_raw(0.0, 0, 4)
        assert (out == data).all()

    def test_accumulate_adds(self, small_config):
        acc = Accumulator(small_config)
        ones = np.ones((2, 4), dtype=np.int32)
        acc.write(0.0, 0, ones * 10, accumulate=False)
        acc.write(0.0, 0, ones * 5, accumulate=True)
        __, out = acc.read_raw(0.0, 0, 2)
        assert (out == 15).all()

    def test_overwrite_clears_tail_columns(self, small_config):
        acc = Accumulator(small_config)
        acc.write(0.0, 0, np.full((1, 4), 9, dtype=np.int32), accumulate=False)
        acc.write(0.0, 0, np.full((1, 2), 1, dtype=np.int32), accumulate=False)
        __, out = acc.read_raw(0.0, 0, 1)
        assert list(out[0]) == [1, 1, 0, 0]

    def test_bounds_checked(self, small_config):
        acc = Accumulator(small_config)
        with pytest.raises(IndexError):
            acc.write(0.0, acc.rows, np.zeros((1, 4), dtype=np.int32), False)


class TestOutputPipeline:
    def test_scaled_read_saturates_to_input_type(self, small_config):
        acc = Accumulator(small_config)
        acc.write(0.0, 0, np.array([[1000, -1000, 100, -100]], dtype=np.int32), False)
        __, out = acc.read_scaled(0.0, 0, 1)
        assert out.dtype == np.int8
        assert list(out[0]) == [127, -128, 100, -100]

    def test_shift_then_scale(self, small_config):
        acc = Accumulator(small_config)
        acc.write(0.0, 0, np.array([[256, 512, -256, 0]], dtype=np.int32), False)
        __, out = acc.read_scaled(0.0, 0, 1, shift=4)
        assert list(out[0]) == [16, 32, -16, 0]

    def test_float_scale(self, small_config):
        acc = Accumulator(small_config)
        acc.write(0.0, 0, np.array([[100, 200, -100, 50]], dtype=np.int32), False)
        __, out = acc.read_scaled(0.0, 0, 1, scale=0.5)
        assert list(out[0]) == [50, 100, -50, 25]

    def test_relu_in_pipeline(self, small_config):
        acc = Accumulator(small_config)
        acc.write(0.0, 0, np.array([[-10, 10, -1, 1]], dtype=np.int32), False)
        __, out = acc.read_scaled(0.0, 0, 1, activation=Activation.RELU)
        assert list(out[0]) == [0, 10, 0, 1]

    def test_relu6_clamps_after_scale(self, small_config):
        acc = Accumulator(small_config)
        acc.write(0.0, 0, np.array([[100, 4, -5, 6]], dtype=np.int32), False)
        __, out = acc.read_scaled(0.0, 0, 1, scale=1.0, activation=Activation.RELU6)
        assert list(out[0]) == [6, 4, 0, 6]

    def test_raw_read_full_width(self, small_config):
        acc = Accumulator(small_config)
        acc.write(0.0, 0, np.array([[1 << 20, 0, 0, 0]], dtype=np.int32), False)
        __, out = acc.read_raw(0.0, 0, 1)
        assert out.dtype == np.int32
        assert out[0, 0] == 1 << 20


class TestAccumulatorTiming:
    def test_row_per_cycle(self, small_config):
        acc = Accumulator(small_config)
        end = acc.write(0.0, 0, np.zeros((8, 4), dtype=np.int32), False)
        assert end == pytest.approx(8.0)

    def test_bank_parallelism(self, small_config):
        acc = Accumulator(small_config)
        acc.write(0.0, 0, np.zeros((4, 4), dtype=np.int32), False)
        end = acc.write(0.0, acc.bank_rows, np.zeros((4, 4), dtype=np.int32), False)
        assert end == pytest.approx(4.0)

    def test_stats(self, small_config):
        acc = Accumulator(small_config)
        acc.write(0.0, 0, np.zeros((2, 4), dtype=np.int32), False)
        acc.write(0.0, 0, np.zeros((2, 4), dtype=np.int32), True)
        acc.read_scaled(0.0, 0, 1)
        assert acc.stats.value("writes") == 2
        assert acc.stats.value("accumulates") == 2
        assert acc.stats.value("reads_scaled") == 1
