"""Unit tests for the banked scratchpad."""

import numpy as np
import pytest

from repro.core.scratchpad import Scratchpad


class TestScratchpadFunctional:
    def test_write_read_round_trip(self, small_config, rng):
        sp = Scratchpad(small_config)
        data = rng.integers(-128, 128, size=(8, 4)).astype(np.int8)
        sp.write(0.0, 10, data)
        __, out = sp.read(0.0, 10, 8)
        assert (out == data).all()

    def test_partial_row_zero_pads(self, small_config):
        sp = Scratchpad(small_config)
        data = np.full((2, 2), 7, dtype=np.int8)
        sp.write(0.0, 0, data)
        __, out = sp.read(0.0, 0, 2)
        assert (out[:, :2] == 7).all()
        assert (out[:, 2:] == 0).all()

    def test_cross_bank_access(self, small_config, rng):
        sp = Scratchpad(small_config)
        boundary = sp.bank_rows - 2
        data = rng.integers(-10, 10, size=(4, 4)).astype(np.int8)
        sp.write(0.0, boundary, data)
        __, out = sp.read(0.0, boundary, 4)
        assert (out == data).all()

    def test_out_of_range_rejected(self, small_config):
        sp = Scratchpad(small_config)
        with pytest.raises(IndexError):
            sp.read(0.0, sp.rows - 1, 2)
        with pytest.raises(ValueError):
            sp.read(0.0, 0, 0)

    def test_too_wide_write_rejected(self, small_config):
        sp = Scratchpad(small_config)
        with pytest.raises(ValueError):
            sp.write(0.0, 0, np.zeros((1, 5), dtype=np.int8))

    def test_capacity(self, small_config):
        sp = Scratchpad(small_config)
        assert sp.capacity_bytes() == small_config.sp_capacity_bytes


class TestScratchpadTiming:
    def test_row_per_cycle(self, small_config):
        sp = Scratchpad(small_config)
        end = sp.write(0.0, 0, np.zeros((8, 4), dtype=np.int8))
        assert end == pytest.approx(8.0)

    def test_same_bank_conflicts_serialize(self, small_config):
        sp = Scratchpad(small_config)
        sp.write(0.0, 0, np.zeros((4, 4), dtype=np.int8))
        end = sp.write(0.0, 4, np.zeros((4, 4), dtype=np.int8))
        assert end == pytest.approx(8.0)

    def test_different_banks_parallel(self, small_config):
        sp = Scratchpad(small_config)
        sp.write(0.0, 0, np.zeros((4, 4), dtype=np.int8))
        end = sp.write(0.0, sp.bank_rows, np.zeros((4, 4), dtype=np.int8))
        assert end == pytest.approx(4.0)

    def test_stats_counting(self, small_config):
        sp = Scratchpad(small_config)
        sp.write(0.0, 0, np.zeros((3, 4), dtype=np.int8))
        sp.read(0.0, 0, 2)
        assert sp.stats.value("writes") == 3
        assert sp.stats.value("reads") == 2

    def test_reset(self, small_config):
        sp = Scratchpad(small_config)
        sp.write(0.0, 0, np.ones((1, 4), dtype=np.int8))
        sp.reset()
        __, out = sp.read(0.0, 0, 1)
        assert (out == 0).all()
        assert sp.stats.value("writes") == 0
