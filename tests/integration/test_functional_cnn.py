"""Functional end-to-end: a small CNN computed bit-exactly through the ISA.

Builds a two-layer int8 CNN and executes every convolution on the
ISA-level accelerator (im2col lowering + tiled matmul + ReLU in the output
pipeline), comparing the final feature map against a float64 NumPy
reference with hardware-accurate saturation.  This closes the loop between
the high-level model definitions and the instruction-level datapath.
"""

import numpy as np

from repro.core.accelerator import Accelerator
from repro.core.config import GemminiConfig
from repro.core.peripherals import ConvParams, PoolParams, PoolingEngine, im2col
from repro.sw.lowlevel import GemminiProgramBuilder


def make_accel():
    cfg = GemminiConfig(
        mesh_rows=8, mesh_cols=8, tile_rows=1, tile_cols=1,
        sp_capacity_bytes=8 * 8 * 1024, sp_banks=4,
        acc_capacity_bytes=8 * 32 * 128, acc_banks=2,
    )
    return cfg, Accelerator(cfg)


def run_conv_on_accel(accel, cfg, image, weights, conv, relu=True):
    """One convolution: im2col lowering, ISA-level matmul, ReLU."""
    patches = im2col(image, conv)  # (M, K) int8
    m, k = patches.shape
    n = conv.out_ch
    a_addr, b_addr, c_addr = 0x10_0000, 0x20_0000, 0x30_0000
    accel.host.write_matrix(a_addr, patches, k)
    accel.host.write_matrix(b_addr, weights, n)
    builder = GemminiProgramBuilder(cfg)
    builder.tiled_matmul_auto(a_addr, b_addr, c_addr, m, k, n,
                              activation=1 if relu else 0)
    accel.run_program(builder.build())
    out = accel.host.read_matrix(c_addr, m, n, n, np.int8)
    return out.reshape(conv.out_h, conv.out_w, n)


def reference_conv(image, weights, conv, relu=True):
    patches = im2col(image, conv).astype(np.float64)
    out = patches @ weights.astype(np.float64)
    if relu:
        out = np.maximum(out, 0)
    out = np.clip(np.rint(out), -128, 127).astype(np.int8)
    return out.reshape(conv.out_h, conv.out_w, conv.out_ch)


class TestFunctionalCNN:
    def test_two_layer_cnn_bit_exact(self, rng):
        cfg, accel = make_accel()
        conv1 = ConvParams(in_h=12, in_w=12, in_ch=3, out_ch=8, kernel=3, padding=1)
        conv2 = ConvParams(in_h=12, in_w=12, in_ch=8, out_ch=16, kernel=3, stride=2)

        image = rng.integers(-6, 6, size=(12, 12, 3)).astype(np.int8)
        w1 = rng.integers(-3, 3, size=(conv1.patch_size, 8)).astype(np.int8)
        w2 = rng.integers(-3, 3, size=(conv2.patch_size, 16)).astype(np.int8)

        # Accelerator path.
        feat1 = run_conv_on_accel(accel, cfg, image, w1, conv1)
        feat2 = run_conv_on_accel(accel, cfg, feat1, w2, conv2)

        # NumPy reference path.
        ref1 = reference_conv(image, w1, conv1)
        assert (feat1 == ref1).all()
        ref2 = reference_conv(ref1, w2, conv2)
        assert (feat2 == ref2).all()
        assert feat2.shape == (5, 5, 16)

    def test_conv_then_pool_matches_reference(self, rng):
        cfg, accel = make_accel()
        conv = ConvParams(in_h=8, in_w=8, in_ch=4, out_ch=8, kernel=3, padding=1)
        image = rng.integers(-6, 6, size=(8, 8, 4)).astype(np.int8)
        weights = rng.integers(-3, 3, size=(conv.patch_size, 8)).astype(np.int8)

        feat = run_conv_on_accel(accel, cfg, image, weights, conv)
        engine = PoolingEngine(cfg.dim)
        pool = PoolParams(size=2, stride=2, in_h=8, in_w=8)
        pooled = engine.max_pool(feat, pool)

        ref = reference_conv(image, weights, conv)
        ref_pooled = engine.max_pool(ref, pool)
        assert (pooled == ref_pooled).all()

    def test_residual_block_functional(self, rng):
        """conv -> conv -> residual add, accumulated in the accumulator."""
        cfg, accel = make_accel()
        conv = ConvParams(in_h=8, in_w=8, in_ch=8, out_ch=8, kernel=1)
        image = rng.integers(-5, 5, size=(8, 8, 8)).astype(np.int8)
        w1 = rng.integers(-3, 3, size=(8, 8)).astype(np.int8)

        feat = run_conv_on_accel(accel, cfg, image, w1, conv, relu=False)
        # Residual add on the host reference; the accelerator path adds via
        # saturating int8 (values kept small so no saturation ambiguity).
        ref = reference_conv(image, w1, conv, relu=False)
        assert (feat == ref).all()

        total = np.clip(
            feat.astype(np.int32) + image.astype(np.int32), -128, 127
        ).astype(np.int8)
        expected = np.clip(
            ref.astype(np.int32) + image.astype(np.int32), -128, 127
        ).astype(np.int8)
        assert (total == expected).all()

    def test_fp32_datapath(self, rng):
        """The template's float mode computes exact fp32 matmuls."""
        from repro.core.dtypes import FP32

        cfg = GemminiConfig(
            mesh_rows=4, mesh_cols=4,
            input_type=FP32, acc_type=FP32,
            sp_capacity_bytes=4 * 4 * 4 * 256, sp_banks=2,
            acc_capacity_bytes=4 * 4 * 4 * 64, acc_banks=2,
        )
        accel = Accelerator(cfg)
        a = rng.normal(size=(4, 4)).astype(np.float32)
        b = rng.normal(size=(4, 4)).astype(np.float32)
        accel.host.write_matrix(0x1000, a, 16)
        accel.host.write_matrix(0x2000, b, 16)
        from repro.core import isa
        from repro.core.isa import LocalAddr

        program = [
            isa.config_ex(dataflow_ws=True),
            isa.config_ld(stride_bytes=16),
            isa.config_st(stride_bytes=16),
            isa.mvin(0x1000, LocalAddr.sp(0), 4, 4),
            isa.mvin(0x2000, LocalAddr.sp(4), 4, 4),
            isa.preload(LocalAddr.sp(4), LocalAddr.acc(0), 4, 4, 4, 4),
            isa.compute_preloaded(LocalAddr.sp(0), LocalAddr.garbage_addr(), 4, 4, 4, 4),
            isa.mvout(0x3000, LocalAddr.acc(0), 4, 4),
            isa.fence(),
        ]
        accel.run_program(program)
        out = accel.host.read_matrix(0x3000, 4, 4, 16, np.float32)
        assert np.allclose(out, a @ b, rtol=1e-5)
