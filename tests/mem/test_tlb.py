"""Unit tests for TLBs, filter registers, and the translation system."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mem.tlb import TLB, FilterRegisters, TLBConfig, TranslationSystem
from repro.sim.timeline import Timeline


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB(entries=4)
        assert not tlb.lookup(7)
        tlb.fill(7)
        assert tlb.lookup(7)

    def test_lru_eviction(self):
        tlb = TLB(entries=2)
        tlb.fill(1)
        tlb.fill(2)
        tlb.lookup(1)  # refresh 1
        tlb.fill(3)  # evicts 2
        assert 1 in tlb
        assert 2 not in tlb
        assert 3 in tlb

    def test_zero_entry_tlb_never_hits(self):
        tlb = TLB(entries=0)
        tlb.fill(1)
        assert not tlb.lookup(1)
        assert tlb.occupancy == 0

    def test_flush(self):
        tlb = TLB(entries=4)
        tlb.fill(1)
        tlb.flush()
        assert not tlb.lookup(1)

    def test_refill_refreshes_recency(self):
        tlb = TLB(entries=2)
        tlb.fill(1)
        tlb.fill(2)
        tlb.fill(1)  # refresh rather than duplicate
        tlb.fill(3)  # evicts 2
        assert 1 in tlb and 3 in tlb and 2 not in tlb

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=200))
    def test_occupancy_never_exceeds_entries(self, vpns):
        tlb = TLB(entries=4)
        for vpn in vpns:
            if not tlb.lookup(vpn):
                tlb.fill(vpn)
        assert tlb.occupancy <= 4


class TestFilterRegisters:
    def test_separate_read_write_channels(self):
        f = FilterRegisters()
        f.update(5, is_write=False)
        assert f.check(5, is_write=False)
        assert not f.check(5, is_write=True)
        f.update(9, is_write=True)
        assert f.check(9, is_write=True)
        assert f.check(5, is_write=False)  # read register undisturbed

    def test_flush(self):
        f = FilterRegisters()
        f.update(5, False)
        f.flush()
        assert not f.check(5, False)


def make_system(private=4, shared=16, filters=False, ptw=None):
    cfg = TLBConfig(
        private_entries=private,
        shared_entries=shared,
        filter_registers=filters,
        private_hit_latency=4.0,
        shared_hit_latency=16.0,
        walk_latency=120.0,
    )
    return TranslationSystem(cfg, ptw=ptw)


class TestTranslationSystem:
    def test_first_access_walks(self):
        xs = make_system()
        result = xs.translate(0.0, 0x1000, False)
        assert result.level == "walk"
        assert result.end_time >= 120.0

    def test_second_access_private_hit(self):
        xs = make_system()
        xs.translate(0.0, 0x1000, False)
        result = xs.translate(200.0, 0x1000, False)
        assert result.level == "private"
        assert result.end_time == pytest.approx(204.0)

    def test_private_eviction_falls_to_shared(self):
        xs = make_system(private=1, shared=16)
        xs.translate(0.0, 0x1000, False)
        xs.translate(0.0, 0x2000, False)  # evicts page 1 from private
        result = xs.translate(500.0, 0x1000, False)
        assert result.level == "shared"

    def test_no_shared_tlb_walks_again(self):
        xs = make_system(private=1, shared=0)
        xs.translate(0.0, 0x1000, False)
        xs.translate(0.0, 0x2000, False)
        result = xs.translate(500.0, 0x1000, False)
        assert result.level == "walk"

    def test_filter_registers_zero_latency(self):
        xs = make_system(filters=True)
        xs.translate(0.0, 0x1000, False)
        result = xs.translate(300.0, 0x1008, False)  # same page
        assert result.level == "filter"
        assert result.end_time == 300.0

    def test_filters_separate_channels(self):
        xs = make_system(filters=True)
        xs.translate(0.0, 0x1000, False)
        xs.translate(200.0, 0x1000, True)  # write: filter miss, private hit
        result_r = xs.translate(400.0, 0x1010, False)
        result_w = xs.translate(500.0, 0x1020, True)
        assert result_r.level == "filter"
        assert result_w.level == "filter"

    def test_shared_ptw_serializes(self):
        ptw = Timeline("ptw")
        a = make_system(ptw=ptw)
        b = make_system(ptw=ptw)
        end_a = a.translate(0.0, 0x1000, False).end_time
        end_b = b.translate(0.0, 0x9000, False).end_time
        assert end_b > end_a  # queued behind the first walk

    def test_flush_clears_all_levels(self):
        xs = make_system(filters=True)
        xs.translate(0.0, 0x1000, False)
        xs.flush()
        result = xs.translate(0.0, 0x1000, False)
        assert result.level == "walk"

    def test_hit_rate_including_filters(self):
        xs = make_system(filters=True)
        for i in range(10):
            xs.translate(float(i), 0x1000 + i * 8, False)
        assert xs.hit_rate_including_filters() == pytest.approx(0.9)

    def test_consecutive_same_page_fraction(self):
        xs = make_system()
        xs.translate(0.0, 0x1000, False)
        xs.translate(0.0, 0x1008, False)  # same page
        xs.translate(0.0, 0x2000, False)  # different
        assert xs.consecutive_same_page_fraction(False) == pytest.approx(0.5)
        assert xs.consecutive_same_page_fraction(True) == 0.0

    def test_miss_window_records(self):
        cfg = TLBConfig(private_entries=2, shared_entries=0, miss_rate_window=4)
        xs = TranslationSystem(cfg)
        for i in range(8):
            xs.translate(float(i), i * 0x1000, False)
        assert len(xs.miss_window.series) == 2
        assert all(v == 1.0 for v in xs.miss_window.series.values)

    def test_private_miss_rate(self):
        xs = make_system()
        xs.translate(0.0, 0x1000, False)
        xs.translate(0.0, 0x1000, False)
        assert xs.private_miss_rate() == pytest.approx(0.5)

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=20),
        st.booleans(),
    ), min_size=1, max_size=100))
    def test_levels_partition_requests(self, requests):
        xs = make_system(private=2, shared=4, filters=True)
        for i, (vpn, is_write) in enumerate(requests):
            xs.translate(float(i), vpn * 4096, is_write)
        s = xs.stats
        total = s.value("requests")
        served = (
            s.value("filter_hits")
            + s.value("private_hits")
            + s.value("shared_hits")
            + s.value("walks")
        )
        assert served == total
