"""Unit tests for the functional host-memory store."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mem.host_memory import HostMemory


class TestHostMemory:
    def test_unwritten_reads_zero(self):
        hm = HostMemory()
        assert (hm.read(0x5000, 16) == 0).all()

    def test_write_read_round_trip(self):
        hm = HostMemory()
        data = np.arange(32, dtype=np.uint8)
        hm.write(0x1000, data)
        assert (hm.read(0x1000, 32) == data).all()

    def test_cross_page_write(self):
        hm = HostMemory(page_bytes=4096)
        data = np.arange(100, dtype=np.uint8)
        hm.write(4096 - 50, data)
        assert (hm.read(4096 - 50, 100) == data).all()
        assert hm.pages_touched == 2

    def test_matrix_round_trip_int8(self):
        hm = HostMemory()
        mat = np.arange(12, dtype=np.int8).reshape(3, 4)
        hm.write_matrix(0x2000, mat, stride_bytes=16)
        out = hm.read_matrix(0x2000, 3, 4, 16, np.int8)
        assert (out == mat).all()

    def test_matrix_round_trip_int32(self):
        hm = HostMemory()
        mat = np.arange(6, dtype=np.int32).reshape(2, 3) * 1000
        hm.write_matrix(0x3000, mat, stride_bytes=64)
        out = hm.read_matrix(0x3000, 2, 3, 64, np.int32)
        assert (out == mat).all()

    def test_strided_rows_do_not_clobber(self):
        hm = HostMemory()
        a = np.full((2, 4), 7, dtype=np.int8)
        hm.write_matrix(0x100, a, stride_bytes=8)
        # Bytes between rows untouched.
        gap = hm.read(0x104, 4)
        assert (gap == 0).all()

    def test_negative_read_rejected(self):
        hm = HostMemory()
        with pytest.raises(ValueError):
            hm.read(0, -1)

    def test_write_matrix_requires_2d(self):
        hm = HostMemory()
        with pytest.raises(ValueError):
            hm.write_matrix(0, np.zeros(4, dtype=np.int8), 4)

    @given(
        st.integers(min_value=0, max_value=1 << 20),
        st.binary(min_size=1, max_size=300),
    )
    def test_arbitrary_round_trip(self, vaddr, payload):
        hm = HostMemory()
        data = np.frombuffer(payload, dtype=np.uint8)
        hm.write(vaddr, data)
        assert (hm.read(vaddr, len(payload)) == data).all()
