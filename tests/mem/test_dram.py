"""Unit tests for the DRAM channel model."""

import pytest

from repro.mem.dram import DRAMConfig, DRAMModel


class TestDRAMConfig:
    def test_defaults_valid(self):
        cfg = DRAMConfig()
        assert cfg.access_latency > cfg.row_hit_latency

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            DRAMConfig(access_latency=-1)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            DRAMConfig(bytes_per_cycle=0)


class TestDRAMModel:
    def test_first_access_pays_full_latency(self):
        dram = DRAMModel(DRAMConfig(access_latency=100, bytes_per_cycle=16))
        end = dram.access(0.0, 0, 64, False)
        assert end == pytest.approx(100 + 64 / 16)

    def test_row_hit_is_cheaper(self):
        cfg = DRAMConfig(access_latency=100, row_hit_latency=20, bytes_per_cycle=16)
        dram = DRAMModel(cfg)
        first = dram.access(0.0, 0, 64, False)
        second = dram.access(first, 64, 64, False)
        assert second - first == pytest.approx(20 + 4)
        assert dram.stats.value("row_hits") == 1
        assert dram.stats.value("row_misses") == 1

    def test_row_conflict_pays_full_latency(self):
        cfg = DRAMConfig(access_latency=100, row_hit_latency=20, row_buffer_bytes=1024)
        dram = DRAMModel(cfg)
        dram.access(0.0, 0, 64, False)
        dram.access(0.0, 4096, 64, False)
        assert dram.stats.value("row_misses") == 2

    def test_bandwidth_serializes(self):
        cfg = DRAMConfig(
            access_latency=0, row_hit_latency=0, bytes_per_cycle=1, activate_occupancy=0
        )
        dram = DRAMModel(cfg)
        dram.access(0.0, 0, 100, False)
        end = dram.access(0.0, 0, 100, False)
        assert end == pytest.approx(200)

    def test_activate_occupancy_blocks_channel(self):
        cfg = DRAMConfig(
            access_latency=0, row_hit_latency=0, bytes_per_cycle=1, activate_occupancy=24
        )
        dram = DRAMModel(cfg)
        dram.access(0.0, 0, 100, False)  # row miss: activate + data
        end = dram.access(0.0, 0, 100, False)  # row hit: data only
        assert end == pytest.approx(224)

    def test_banks_keep_independent_open_rows(self):
        cfg = DRAMConfig(row_buffer_bytes=1024, num_banks=8)
        dram = DRAMModel(cfg)
        # Two interleaved streams landing in different banks both stay open.
        dram.access(0.0, 0, 64, False)          # bank 0, opens row 0
        dram.access(0.0, 1024, 64, False)       # bank 1, opens row 1
        dram.access(0.0, 64, 64, False)         # bank 0, row 0 again: hit
        dram.access(0.0, 1088, 64, False)       # bank 1, row 1 again: hit
        assert dram.stats.value("row_hits") == 2
        assert dram.stats.value("row_misses") == 2

    def test_single_bank_thrashes(self):
        cfg = DRAMConfig(row_buffer_bytes=1024, num_banks=1)
        dram = DRAMModel(cfg)
        dram.access(0.0, 0, 64, False)
        dram.access(0.0, 1024, 64, False)
        dram.access(0.0, 64, 64, False)  # row 0 was closed by the row-1 access
        assert dram.stats.value("row_hits") == 0

    def test_zero_bytes_is_noop(self):
        dram = DRAMModel()
        assert dram.access(5.0, 0, 0, False) == 5.0

    def test_read_write_counters(self):
        dram = DRAMModel()
        dram.access(0.0, 0, 64, False)
        dram.access(0.0, 0, 64, True)
        assert dram.stats.value("reads") == 1
        assert dram.stats.value("writes") == 1
        assert dram.bytes_moved == 128

    def test_reset(self):
        dram = DRAMModel()
        dram.access(0.0, 0, 64, False)
        dram.reset()
        assert dram.bytes_moved == 0
        assert dram.stats.value("reads") == 0
