"""Unit tests for page tables and the virtual-memory allocator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mem.page_table import PageFault, PageTable, VirtualMemory


class TestPageTable:
    def test_map_and_walk(self):
        pt = PageTable()
        pt.map_page(0x123, 0x456)
        assert pt.walk(0x123) == 0x456

    def test_walk_counts_level_accesses(self):
        pt = PageTable()
        pt.map_page(1, 2)
        pt.walk(1)
        pt.walk(1)
        assert pt.walk_accesses == 6

    def test_unmapped_page_faults(self):
        pt = PageTable()
        with pytest.raises(PageFault):
            pt.walk(0x999)

    def test_unmap(self):
        pt = PageTable()
        pt.map_page(5, 6)
        pt.unmap_page(5)
        assert not pt.is_mapped(5)
        with pytest.raises(PageFault):
            pt.unmap_page(5)

    def test_translate_byte_address(self):
        pt = PageTable(page_bytes=4096)
        pt.map_page(2, 10)
        assert pt.translate(2 * 4096 + 123) == 10 * 4096 + 123

    def test_remap_does_not_double_count(self):
        pt = PageTable()
        pt.map_page(1, 2)
        pt.map_page(1, 3)
        assert pt.mapped_pages == 1
        assert pt.walk(1) == 3

    def test_bad_page_size_rejected(self):
        with pytest.raises(ValueError):
            PageTable(page_bytes=1000)

    @given(st.sets(st.integers(min_value=0, max_value=1 << 27), min_size=1, max_size=50))
    def test_distinct_vpns_all_recoverable(self, vpns):
        pt = PageTable()
        for i, vpn in enumerate(sorted(vpns)):
            pt.map_page(vpn, i + 1)
        for i, vpn in enumerate(sorted(vpns)):
            assert pt.walk(vpn) == i + 1
        assert pt.mapped_pages == len(vpns)


class TestVirtualMemory:
    def test_alloc_maps_pages(self):
        vm = VirtualMemory()
        vaddr = vm.alloc(10000, "x")
        first = vaddr // vm.page_bytes
        last = (vaddr + 9999) // vm.page_bytes
        for vpn in range(first, last + 1):
            assert vm.page_table.is_mapped(vpn)

    def test_allocations_do_not_overlap(self):
        vm = VirtualMemory()
        a = vm.alloc(1000, "a")
        b = vm.alloc(1000, "b")
        assert b >= a + 1000

    def test_alloc_alignment(self):
        vm = VirtualMemory()
        vm.alloc(3, "a")
        b = vm.alloc(10, "b")
        assert b % 64 == 0

    def test_translate_round_trip(self):
        vm = VirtualMemory()
        vaddr = vm.alloc(8192, "t")
        paddr1 = vm.translate(vaddr)
        paddr2 = vm.translate(vaddr + 4096)
        assert paddr1 != paddr2

    def test_sequential_physical_is_contiguous(self):
        vm = VirtualMemory(scattered=False)
        vaddr = vm.alloc(3 * 4096, "t")
        base_ppn = vm.page_table.walk(vaddr // 4096)
        assert vm.page_table.walk(vaddr // 4096 + 1) == base_ppn + 1

    def test_scattered_physical_is_deterministic(self):
        vm1 = VirtualMemory(scattered=True)
        vm2 = VirtualMemory(scattered=True)
        a1 = vm1.alloc(4096, "x")
        a2 = vm2.alloc(4096, "x")
        assert vm1.translate(a1) == vm2.translate(a2)

    def test_scattered_differs_across_asids(self):
        vm1 = VirtualMemory(scattered=True, asid=0)
        vm2 = VirtualMemory(scattered=True, asid=1)
        a1 = vm1.alloc(4096, "x")
        a2 = vm2.alloc(4096, "x")
        assert vm1.translate(a1) != vm2.translate(a2)

    def test_zero_alloc_rejected(self):
        vm = VirtualMemory()
        with pytest.raises(ValueError):
            vm.alloc(0)

    def test_region_lookup(self):
        vm = VirtualMemory()
        vaddr = vm.alloc(100, "weights")
        region = vm.region("weights")
        assert region.vaddr == vaddr
        assert region.size == 100
        assert region.end == vaddr + 100

    def test_bytes_allocated_tracks(self):
        vm = VirtualMemory()
        vm.alloc(100)
        vm.alloc(200)
        assert vm.bytes_allocated >= 300
