"""Unit tests for the system bus."""

import pytest

from repro.mem.bus import SystemBus


class TestSystemBus:
    def test_width_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            SystemBus(beat_bytes=12)

    def test_transfer_time(self):
        bus = SystemBus(beat_bytes=16)
        end = bus.transfer(0.0, 64)
        assert end == pytest.approx(1.0 + 64 / 16)

    def test_wider_bus_is_faster(self):
        narrow = SystemBus(beat_bytes=8)
        wide = SystemBus(beat_bytes=64)
        assert wide.transfer(0.0, 512) < narrow.transfer(0.0, 512)

    def test_requester_accounting(self):
        bus = SystemBus()
        bus.transfer(0.0, 100, requester="cpu0")
        bus.transfer(0.0, 50, requester="gemmini0")
        assert bus.stats.value("bytes_cpu0") == 100
        assert bus.stats.value("bytes_gemmini0") == 50
        assert bus.stats.value("bytes") == 150

    def test_zero_bytes_noop(self):
        bus = SystemBus()
        assert bus.transfer(7.0, 0) == 7.0
        assert bus.stats.value("transactions") == 0

    def test_contention_serializes(self):
        bus = SystemBus(beat_bytes=16)
        end1 = bus.transfer(0.0, 160)
        end2 = bus.transfer(0.0, 160)
        assert end2 > end1
