"""Unit tests for the set-associative write-back cache."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mem.cache import Cache, CacheConfig
from repro.mem.dram import DRAMConfig, DRAMModel


def make_cache(size=1024, ways=2, line=64, **kwargs):
    dram = DRAMModel(DRAMConfig(access_latency=100, bytes_per_cycle=16))
    cache = Cache(CacheConfig(size_bytes=size, ways=ways, line_bytes=line, **kwargs), dram)
    return cache, dram


class TestCacheConfig:
    def test_num_sets(self):
        cfg = CacheConfig(size_bytes=1 << 20, ways=8, line_bytes=64)
        assert cfg.num_sets == (1 << 20) // (8 * 64)
        assert cfg.num_lines == (1 << 20) // 64

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, ways=3, line_bytes=64)
        with pytest.raises(ValueError):
            CacheConfig(line_bytes=48)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0)


class TestCacheBehaviour:
    def test_cold_miss_then_hit(self):
        cache, __ = make_cache()
        cache.access(0.0, 0, 64, False)
        cache.access(0.0, 0, 64, False)
        assert cache.stats.value("misses") == 1
        assert cache.stats.value("hits") == 1

    def test_miss_fetches_from_lower(self):
        cache, dram = make_cache()
        cache.access(0.0, 0, 64, False)
        assert dram.stats.value("reads") == 1

    def test_hit_does_not_touch_lower(self):
        cache, dram = make_cache()
        cache.access(0.0, 0, 64, False)
        before = dram.stats.value("reads")
        cache.access(0.0, 0, 64, False)
        assert dram.stats.value("reads") == before

    def test_multi_line_access_counts_each_line(self):
        cache, __ = make_cache()
        cache.access(0.0, 0, 256, False)
        assert cache.stats.value("accesses") == 4

    def test_lru_eviction_order(self):
        # 2-way, set 0 holds lines 0 and num_sets; a third line in the same
        # set must evict the least recently used one.
        cache, __ = make_cache(size=1024, ways=2, line=64)
        num_sets = cache.config.num_sets
        a, b, c = 0, num_sets * 64, 2 * num_sets * 64
        cache.access(0.0, a, 64, False)
        cache.access(0.0, b, 64, False)
        cache.access(0.0, a, 64, False)  # refresh a
        cache.access(0.0, c, 64, False)  # evicts b
        assert cache.probe(a)
        assert not cache.probe(b)
        assert cache.probe(c)

    def test_dirty_eviction_writes_back(self):
        cache, dram = make_cache(size=1024, ways=1, line=64)
        num_sets = cache.config.num_sets
        cache.access(0.0, 0, 64, True)  # dirty line
        cache.access(0.0, num_sets * 64, 64, False)  # evicts it
        assert cache.stats.value("writebacks") == 1
        assert dram.stats.value("writes") == 1

    def test_clean_eviction_no_writeback(self):
        cache, __ = make_cache(size=1024, ways=1, line=64)
        num_sets = cache.config.num_sets
        cache.access(0.0, 0, 64, False)
        cache.access(0.0, num_sets * 64, 64, False)
        assert cache.stats.value("writebacks") == 0

    def test_flush_writes_dirty_lines(self):
        cache, dram = make_cache()
        cache.access(0.0, 0, 64, True)
        cache.access(0.0, 64, 64, False)
        cache.flush()
        assert cache.resident_lines() == 0
        assert dram.stats.value("writes") == 1

    def test_capacity_thrash(self):
        # Streaming 2x the capacity twice gives ~zero hits with LRU.
        cache, __ = make_cache(size=1024, ways=2, line=64)
        for __pass in range(2):
            for addr in range(0, 2048, 64):
                cache.access(0.0, addr, 64, False)
        assert cache.stats.value("hits") == 0
        assert cache.miss_rate() == 1.0

    def test_working_set_fits(self):
        cache, __ = make_cache(size=1024, ways=2, line=64)
        for __pass in range(3):
            for addr in range(0, 1024, 64):
                cache.access(0.0, addr, 64, False)
        assert cache.stats.value("misses") == 16  # cold only
        assert cache.stats.value("hits") == 32

    def test_requester_tagging(self):
        cache, __ = make_cache()
        cache.access(0.0, 0, 64, False, requester="g0")
        cache.access(0.0, 0, 64, False, requester="g1")
        assert cache.stats.value("misses_g0") == 1
        assert cache.stats.value("hits_g1") == 1

    def test_zero_bytes_noop(self):
        cache, __ = make_cache()
        assert cache.access(3.0, 0, 0, False) == 3.0

    def test_miss_slower_than_hit(self):
        cache, __ = make_cache()
        t_miss = cache.access(0.0, 0, 64, False)
        t_hit = cache.access(t_miss, 0, 64, False) - t_miss
        assert t_hit < t_miss

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=100))
    def test_residency_bounded_by_ways(self, line_indices):
        cache, __ = make_cache(size=1024, ways=2, line=64)
        for index in line_indices:
            cache.access(0.0, index * 64, 64, False)
        assert cache.resident_lines() <= cache.config.num_lines
        for ways in cache._sets:
            assert len(ways) <= cache.config.ways

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=60))
    def test_hits_plus_misses_equals_accesses(self, addrs):
        cache, __ = make_cache()
        for addr in addrs:
            cache.access(0.0, addr, 32, False)
        stats = cache.stats
        assert stats.value("hits") + stats.value("misses") == stats.value("accesses")
