"""Batch-vs-scalar parity for the memory models' vectorised entry points.

The trace-replay fast path re-resolves contended segments through
``Cache.access_batch`` / ``DRAMModel.access_batch`` /
``TranslationSystem.translate_batch`` / ``MemorySystem.access_batch``.
These suites drive the same request streams through the scalar loop and
the batched call on twin instances and require identical state evolution
and aggregate counters, with end times equal up to float association
(the batched timeline scan re-associates the same additions).
"""

import random

import numpy as np
import pytest

from repro.mem.dram import DRAMConfig, DRAMModel
from repro.mem.hierarchy import MemorySystem, MemorySystemConfig
from repro.mem.tlb import TLBConfig, TranslationSystem
from repro.sim.timeline import BandwidthTimeline, Timeline

RTOL = 1e-9


def random_stream(rng, n, max_addr=1 << 22, streaming_every=3):
    now = np.cumsum([rng.random() * 40 for __ in range(n)])
    addr = np.array([rng.randrange(0, max_addr) for __ in range(n)])
    # Interleave a streaming component (consecutive lines) with random hits.
    addr[::streaming_every] = (np.arange(len(addr[::streaming_every])) * 64) % max_addr
    nbytes = np.array([rng.choice([1, 16, 64, 512, 4096]) for __ in range(n)])
    is_write = np.array([rng.random() < 0.4 for __ in range(n)])
    return now, addr, nbytes, is_write


class TestTimelineBookBatch:
    def test_matches_sequential_bookings(self):
        rng = random.Random(0)
        a, b = Timeline("a"), Timeline("b")
        earliest = np.cumsum([rng.random() * 10 for __ in range(200)])
        earliest[::7] = earliest[::7] - 5.0  # out-of-order arrivals queue FCFS
        durations = np.array([rng.random() * 8 for __ in range(200)])
        scalar = np.array([a.book(e, d)[1] for e, d in zip(earliest, durations)])
        batch = b.book_batch(earliest, durations)
        np.testing.assert_allclose(batch, scalar, rtol=RTOL)
        assert a.bookings == b.bookings
        assert a.busy_time == pytest.approx(b.busy_time, rel=RTOL)
        assert a.next_free == pytest.approx(b.next_free, rel=RTOL)

    def test_empty_batch_is_noop(self):
        t = Timeline("t")
        assert t.book_batch(np.empty(0), np.empty(0)).size == 0
        assert t.bookings == 0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Timeline("t").book_batch(np.zeros(2), np.array([1.0, -1.0]))


class TestBandwidthTransferBatch:
    def test_matches_sequential_transfers(self):
        a = BandwidthTimeline("a", 16.0, overhead=1.0)
        b = BandwidthTimeline("b", 16.0, overhead=1.0)
        earliest = np.arange(50, dtype=np.float64) * 3.0
        nbytes = np.tile([64, 512, 16, 100, 4096], 10)
        scalar = np.array([a.transfer(e, int(n))[1] for e, n in zip(earliest, nbytes)])
        batch = b.transfer_batch(earliest, nbytes)
        np.testing.assert_allclose(batch, scalar, rtol=RTOL)
        assert a.bytes_moved == b.bytes_moved


class TestDRAMBatch:
    @pytest.mark.parametrize("num_banks", [1, 2, 8])
    @pytest.mark.parametrize("activate", [0.0, 24.0])
    def test_parity_with_scalar_loop(self, num_banks, activate):
        rng = random.Random(num_banks * 100 + int(activate))
        cfg = DRAMConfig(num_banks=num_banks, activate_occupancy=activate)
        a, b = DRAMModel(cfg), DRAMModel(cfg)
        now, addr, nbytes, wr = random_stream(rng, 250)
        scalar = np.array(
            [a.access(t, int(ad), int(nb), bool(w)) for t, ad, nb, w in zip(now, addr, nbytes, wr)]
        )
        batch = b.access_batch(now, addr, nbytes, wr)
        np.testing.assert_allclose(batch, scalar, rtol=RTOL, atol=1e-6)
        assert a.stats.snapshot() == b.stats.snapshot()
        assert a._open_rows == b._open_rows
        assert a.bytes_moved == b.bytes_moved
        assert a.channel.inner.bookings == b.channel.inner.bookings
        assert a.channel.inner.next_free == pytest.approx(b.channel.inner.next_free, rel=RTOL)

    def test_mixing_scalar_and_batch_is_safe(self):
        """State is shared: a scalar access between batches sees batch state."""
        a, b = DRAMModel(), DRAMModel()
        addr = np.arange(10) * 1024  # one row each
        a_ends = [a.access(float(i), int(ad), 64, False) for i, ad in enumerate(addr)]
        b.access_batch(np.arange(5, dtype=float), addr[:5], np.full(5, 64), np.zeros(5, bool))
        mid = b.access(5.0, int(addr[5]), 64, False)
        b.access_batch(np.arange(6, 10, dtype=float), addr[6:], np.full(4, 64), np.zeros(4, bool))
        assert mid == pytest.approx(a_ends[5], rel=RTOL)
        assert a._open_rows == b._open_rows

    def test_rejects_non_positive_bytes(self):
        with pytest.raises(ValueError):
            DRAMModel().access_batch(np.zeros(1), np.zeros(1, np.int64), np.zeros(1, np.int64), np.zeros(1, bool))


class TestCacheBatch:
    def test_parity_with_scalar_loop(self):
        rng = random.Random(7)
        for trial in range(4):
            a, b = MemorySystem(), MemorySystem()
            now, addr, nbytes, wr = random_stream(rng, 300, max_addr=1 << 21)
            scalar = np.array(
                [
                    a.l2.access(t, int(ad), int(nb), bool(w), "gem0")
                    for t, ad, nb, w in zip(now, addr, nbytes, wr)
                ]
            )
            batch = b.l2.access_batch(now, addr, nbytes, wr, "gem0")
            np.testing.assert_allclose(batch, scalar, rtol=RTOL, atol=1e-6)
            assert a.l2.stats.snapshot() == b.l2.stats.snapshot()
            assert a.dram.stats.snapshot() == b.dram.stats.snapshot()
            # LRU sets evolved through identical decisions: same tags, same
            # dirty bits, same recency order.
            assert [list(s.items()) for s in a.l2._sets] == [list(s.items()) for s in b.l2._sets]

    def test_full_hierarchy_parity(self):
        rng = random.Random(11)
        a, b = MemorySystem(), MemorySystem()
        now, addr, nbytes, wr = random_stream(rng, 300)
        scalar = np.array(
            [a.access(t, int(ad), int(nb), bool(w), "g") for t, ad, nb, w in zip(now, addr, nbytes, wr)]
        )
        batch = b.access_batch(now, addr, nbytes, wr, "g")
        np.testing.assert_allclose(batch, scalar, rtol=RTOL, atol=1e-6)
        assert a.bus.stats.snapshot() == b.bus.stats.snapshot()
        assert a.dram.bytes_moved == b.dram.bytes_moved

    def test_no_l2_routes_to_dram(self):
        cfg = MemorySystemConfig(l2=None)
        a, b = MemorySystem(cfg), MemorySystem(cfg)
        now = np.arange(20, dtype=float) * 10
        addr = np.arange(20) * 64
        nbytes = np.full(20, 64)
        wr = np.zeros(20, bool)
        scalar = np.array([a.access(float(t), int(ad), 64, False) for t, ad in zip(now, addr)])
        batch = b.access_batch(now, addr, nbytes, wr)
        np.testing.assert_allclose(batch, scalar, rtol=RTOL)


class TestTranslateBatch:
    @pytest.mark.parametrize("filters", [False, True])
    @pytest.mark.parametrize("private,shared", [(16, 128), (4, 0), (0, 32), (0, 0)])
    def test_parity_with_scalar_loop(self, filters, private, shared):
        rng = random.Random(private * 7 + shared + int(filters))
        cfg = TLBConfig(private_entries=private, shared_entries=shared, filter_registers=filters)
        a = TranslationSystem(cfg, ptw=Timeline("a"))
        b = TranslationSystem(cfg, ptw=Timeline("b"))
        n = 400
        now = np.cumsum([rng.random() * 10 for __ in range(n)])
        vpns = np.array([rng.randrange(0, 40) for __ in range(n)])
        vpns[::4] = vpns[0]  # consecutive same-page runs exercise the filters
        wr = np.array([rng.random() < 0.3 for __ in range(n)])
        scalar = np.array(
            [a.translate_vpn(t, int(v), bool(w)).end_time for t, v, w in zip(now, vpns, wr)]
        )
        batch = b.translate_batch(now, vpns, wr)
        np.testing.assert_allclose(batch, scalar, rtol=1e-12)
        assert a.stats.snapshot() == b.stats.snapshot()
        assert list(a.private._lru) == list(b.private._lru)
        assert list(a.shared._lru) == list(b.shared._lru)
        assert a._last_vpn == b._last_vpn
        # The miss-rate series carries identical *values* (runs fold at the
        # same window boundaries); only emission timestamps coarsen.
        assert a.miss_window.series.values == b.miss_window.series.values

    def test_shared_ptw_bookings_match(self):
        ptw_a, ptw_b = Timeline("a"), Timeline("b")
        cfg = TLBConfig(private_entries=2, shared_entries=0)
        a = TranslationSystem(cfg, ptw=ptw_a)
        b = TranslationSystem(cfg, ptw=ptw_b)
        vpns = np.arange(50) % 7
        now = np.arange(50, dtype=float) * 5
        wr = np.zeros(50, bool)
        for t, v in zip(now, vpns):
            a.translate_vpn(float(t), int(v), False)
        b.translate_batch(now, vpns, wr)
        assert ptw_a.bookings == ptw_b.bookings
        assert ptw_a.next_free == pytest.approx(ptw_b.next_free, rel=RTOL)
