"""Unit tests for the composed memory system."""

import pytest

from repro.mem.cache import CacheConfig
from repro.mem.dram import DRAMConfig
from repro.mem.hierarchy import MemorySystem, MemorySystemConfig


class TestMemorySystemConfig:
    def test_with_l2_size(self):
        cfg = MemorySystemConfig()
        bigger = cfg.with_l2_size(2 << 20)
        assert bigger.l2.size_bytes == 2 << 20
        assert bigger.l2.ways == cfg.l2.ways
        assert bigger.dram is cfg.dram

    def test_with_l2_size_requires_l2(self):
        cfg = MemorySystemConfig(l2=None)
        with pytest.raises(ValueError):
            cfg.with_l2_size(1 << 20)


class TestMemorySystem:
    def test_access_through_l2(self):
        mem = MemorySystem()
        mem.access(0.0, 0, 64, False)
        assert mem.l2.stats.value("accesses") == 1
        mem.access(0.0, 0, 64, False)
        assert mem.l2.stats.value("hits") == 1

    def test_l2_bypass(self):
        mem = MemorySystem(MemorySystemConfig(l2=None))
        end = mem.access(0.0, 0, 64, False)
        assert mem.l2 is None
        assert mem.dram.stats.value("reads") == 1
        assert end > 0

    def test_l2_hit_faster_than_miss(self):
        mem = MemorySystem()
        t_miss = mem.access(0.0, 0, 64, False)
        t_hit = mem.access(t_miss, 0, 64, False) - t_miss
        assert t_hit < t_miss

    def test_read_write_helpers(self):
        mem = MemorySystem()
        mem.read(0.0, 0, 64)
        mem.write(0.0, 0, 64)
        assert mem.l2.stats.value("reads") == 1
        assert mem.l2.stats.value("writes") == 1

    def test_l2_miss_rate_streaming(self):
        cfg = MemorySystemConfig(
            l2=CacheConfig(size_bytes=4096, ways=2, line_bytes=64),
            dram=DRAMConfig(),
        )
        mem = MemorySystem(cfg)
        for addr in range(0, 16384, 64):
            mem.access(0.0, addr, 64, False)
        assert mem.l2_miss_rate() == 1.0

    def test_bus_contention_shared_by_requesters(self):
        mem = MemorySystem()
        mem.access(0.0, 0, 1024, False, requester="a")
        end = mem.access(0.0, 1 << 20, 1024, False, requester="b")
        solo = MemorySystem()
        solo_end = solo.access(0.0, 1 << 20, 1024, False, requester="b")
        assert end > solo_end  # queued behind requester a

    def test_reset(self):
        mem = MemorySystem()
        mem.access(0.0, 0, 64, False)
        mem.reset()
        assert mem.l2.stats.value("accesses") == 0
        assert mem.dram.bytes_moved == 0
