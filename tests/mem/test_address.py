"""Unit tests for address arithmetic helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mem.address import AddressRange, align_down, align_up, line_span, page_span


class TestAlignment:
    def test_align_down(self):
        assert align_down(0x1234, 0x100) == 0x1200
        assert align_down(0x1200, 0x100) == 0x1200

    def test_align_up(self):
        assert align_up(0x1234, 0x100) == 0x1300
        assert align_up(0x1200, 0x100) == 0x1200

    @given(st.integers(min_value=0, max_value=1 << 40), st.sampled_from([1, 2, 64, 4096]))
    def test_alignment_brackets_address(self, addr, alignment):
        down = align_down(addr, alignment)
        up = align_up(addr, alignment)
        assert down <= addr <= up
        assert down % alignment == 0
        assert up % alignment == 0
        assert up - down in (0, alignment)


class TestSpans:
    def test_line_span_single(self):
        assert list(line_span(0, 64, 64)) == [0]
        assert list(line_span(10, 4, 64)) == [0]

    def test_line_span_straddles(self):
        assert list(line_span(60, 8, 64)) == [0, 1]

    def test_line_span_empty(self):
        assert list(line_span(0, 0, 64)) == []

    def test_page_span(self):
        assert list(page_span(4090, 10, 4096)) == [0, 1]

    @given(
        st.integers(min_value=0, max_value=1 << 30),
        st.integers(min_value=1, max_value=1 << 16),
    )
    def test_span_covers_both_endpoints(self, addr, nbytes):
        span = line_span(addr, nbytes, 64)
        assert span.start == addr // 64
        assert span.stop - 1 == (addr + nbytes - 1) // 64


class TestAddressRange:
    def test_contains(self):
        r = AddressRange(100, 50)
        assert r.contains(100)
        assert r.contains(149)
        assert not r.contains(150)
        assert not r.contains(99)

    def test_overlap(self):
        a = AddressRange(0, 10)
        b = AddressRange(5, 10)
        c = AddressRange(10, 10)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_zero_size_never_overlaps(self):
        assert not AddressRange(5, 0).overlaps(AddressRange(0, 100))

    def test_intersection(self):
        a = AddressRange(0, 10)
        b = AddressRange(5, 10)
        inter = a.intersection(b)
        assert inter.base == 5
        assert inter.size == 5

    def test_disjoint_intersection_empty(self):
        assert AddressRange(0, 5).intersection(AddressRange(10, 5)).size == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            AddressRange(0, -1)
