"""Physical-model tests: calibration anchors and design-space monotonicity."""

import pytest

from repro.core.config import (
    GemminiConfig,
    default_config,
    fp32_config,
    systolic_config,
    vector_config,
)
from repro.physical.area import accelerator_area, pipeline_register_count, spatial_array_area
from repro.physical.power import power_mw, spatial_array_power_mw
from repro.physical.technology import INTEL_22FFL, TSMC_16FF
from repro.physical.timing import max_frequency_ghz


class TestFigure3Anchors:
    """The model must reproduce the paper's synthesis points exactly."""

    def test_systolic_frequency(self):
        assert max_frequency_ghz(systolic_config(16)) == pytest.approx(1.89, rel=0.01)

    def test_vector_frequency(self):
        assert max_frequency_ghz(vector_config(16)) == pytest.approx(0.69, rel=0.01)

    def test_systolic_area(self):
        area = spatial_array_area(systolic_config(16))
        assert area == pytest.approx(120_000, rel=0.01)

    def test_vector_area(self):
        area = spatial_array_area(vector_config(16))
        assert area == pytest.approx(67_000, rel=0.01)

    def test_power_ratio_3x(self):
        p_sys = spatial_array_power_mw(systolic_config(16))
        p_vec = spatial_array_power_mw(vector_config(16))
        assert p_sys / p_vec == pytest.approx(3.0, rel=0.01)

    def test_freq_ratio_2_7x(self):
        ratio = max_frequency_ghz(systolic_config(16)) / max_frequency_ghz(vector_config(16))
        assert ratio == pytest.approx(2.7, rel=0.02)


class TestFigure6Anchors:
    def test_breakdown_matches_paper(self):
        breakdown = accelerator_area(default_config(), cpu="rocket")
        assert breakdown.scratchpad == pytest.approx(544_000, rel=0.01)
        assert breakdown.accumulator == pytest.approx(146_000, rel=0.01)
        assert breakdown.cpu == pytest.approx(171_000, rel=0.01)
        assert breakdown.total == pytest.approx(1_029_000, rel=0.02)

    def test_percentages_match_paper(self):
        breakdown = accelerator_area(default_config(), cpu="rocket")
        assert 100 * breakdown.fraction("scratchpad") == pytest.approx(52.9, abs=1.0)
        assert 100 * breakdown.fraction("accumulator") == pytest.approx(14.2, abs=0.5)
        assert 100 * breakdown.fraction("cpu") == pytest.approx(16.6, abs=0.5)
        assert 100 * breakdown.fraction("spatial_array") == pytest.approx(11.3, abs=1.0)

    def test_srams_dominate(self):
        """Paper: SRAMs alone are 67.1% of the accelerator's area."""
        b = accelerator_area(default_config(), cpu="rocket")
        accel_only = b.total - b.cpu
        assert (b.scratchpad + b.accumulator) / accel_only > 0.60

    def test_rows_iterate_components(self):
        rows = accelerator_area(default_config()).rows()
        names = [r[0] for r in rows]
        assert names == ["spatial_array", "scratchpad", "accumulator", "cpu", "uncore"]
        assert sum(r[2] for r in rows) == pytest.approx(100.0)


class TestDesignSpaceBehaviour:
    def test_intermediate_tilings_interpolate(self):
        freqs = []
        areas = []
        for tile in (1, 2, 4, 8, 16):
            cfg = GemminiConfig(
                mesh_rows=16 // tile, mesh_cols=16 // tile,
                tile_rows=tile, tile_cols=tile,
            )
            freqs.append(max_frequency_ghz(cfg))
            areas.append(spatial_array_area(cfg))
        assert freqs == sorted(freqs, reverse=True)  # bigger tiles: slower clock
        assert areas == sorted(areas, reverse=True)  # bigger tiles: less area

    def test_area_scales_with_pes(self):
        small = spatial_array_area(systolic_config(8))
        big = spatial_array_area(systolic_config(32))
        assert big > 4 * small  # 16x the PEs

    def test_register_count(self):
        assert pipeline_register_count(systolic_config(16)) == 16 * 15 * 2 + 32
        assert pipeline_register_count(vector_config(16)) == 32

    def test_fp32_wider_datapath_larger_and_slower(self):
        int8 = default_config()
        fp32 = fp32_config()
        assert spatial_array_area(fp32) > spatial_array_area(int8)
        assert max_frequency_ghz(fp32) < max_frequency_ghz(int8)

    def test_bigger_sram_bigger_area(self):
        base = accelerator_area(default_config())
        big = accelerator_area(default_config().with_memories(sp_capacity_bytes=512 * 1024))
        assert big.scratchpad == pytest.approx(2 * base.scratchpad)

    def test_unknown_cpu_rejected(self):
        with pytest.raises(ValueError):
            accelerator_area(default_config(), cpu="cortex")

    def test_power_includes_sram(self):
        total = power_mw(default_config(), frequency_ghz=1.0)
        array = spatial_array_power_mw(default_config(), frequency_ghz=1.0)
        assert total > array

    def test_power_scales_with_frequency(self):
        low = power_mw(default_config(), frequency_ghz=0.5)
        high = power_mw(default_config(), frequency_ghz=1.0)
        assert high == pytest.approx(2 * low)

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            spatial_array_power_mw(default_config(), frequency_ghz=0)


class TestTechnologyScaling:
    def test_tsmc16_denser_and_faster(self):
        cfg = systolic_config(16)
        assert spatial_array_area(cfg, TSMC_16FF) < spatial_array_area(cfg, INTEL_22FFL)
        assert max_frequency_ghz(cfg, TSMC_16FF) > max_frequency_ghz(cfg, INTEL_22FFL)

    def test_scaled_preserves_ratios(self):
        sys_cfg = systolic_config(16)
        vec_cfg = vector_config(16)
        ratio_22 = spatial_array_area(sys_cfg, INTEL_22FFL) / spatial_array_area(
            vec_cfg, INTEL_22FFL
        )
        ratio_16 = spatial_array_area(sys_cfg, TSMC_16FF) / spatial_array_area(
            vec_cfg, TSMC_16FF
        )
        assert ratio_16 == pytest.approx(ratio_22)
