"""Tests for the energy model."""

import pytest

from repro.core.config import default_config, systolic_config, vector_config
from repro.core.generator import SoftwareParams
from repro.physical.energy import (
    EnergyReport,
    estimate_energy,
    estimate_run_energy,
    mac_energy_pj,
)
from repro.soc.soc import make_soc
from repro.sw.compiler import compile_graph
from repro.sw.runtime import run_model_on_tile


class TestMacEnergy:
    def test_positive(self):
        assert mac_energy_pj(default_config()) > 0

    def test_systolic_more_per_mac_than_vector(self):
        """Pipeline registers triple the array power (Figure 3)."""
        assert mac_energy_pj(systolic_config()) == pytest.approx(
            3.0 * mac_energy_pj(vector_config()), rel=0.01
        )


class TestEstimate:
    def test_breakdown_sums(self):
        report = estimate_energy(
            default_config(), macs=10**9, cycles=10**7, dma_bytes=10**8, dram_bytes=10**8
        )
        assert report.total_mj == pytest.approx(
            report.array_mj + report.sram_mj + report.dram_mj + report.static_mj
        )

    def test_monotone_in_activity(self):
        base = estimate_energy(default_config(), 10**9, 10**7, 10**8, 10**8)
        more_macs = estimate_energy(default_config(), 2 * 10**9, 10**7, 10**8, 10**8)
        more_dram = estimate_energy(default_config(), 10**9, 10**7, 10**8, 2 * 10**8)
        assert more_macs.total_mj > base.total_mj
        assert more_dram.dram_mj == pytest.approx(2 * base.dram_mj)

    def test_dram_costlier_per_byte_than_sram(self):
        report = estimate_energy(default_config(), 0, 10**6, 10**8, 10**8)
        assert report.dram_mj > report.sram_mj / 3  # per-byte: 20 vs 3*1.2 pJ

    def test_negative_counters_rejected(self):
        with pytest.raises(ValueError):
            estimate_energy(default_config(), -1, 1, 1, 1)

    def test_rows_percentages(self):
        report = estimate_energy(default_config(), 10**9, 10**7, 10**8, 10**8)
        rows = report.rows()
        assert sum(pct for __, __v, pct in rows) == pytest.approx(100.0)

    def test_tops_per_watt_sane(self):
        """int8 accelerators in 22nm land in the ~0.1-30 TOPS/W range."""
        report = estimate_energy(
            default_config(), macs=4 * 10**9, cycles=4 * 10**7,
            dma_bytes=6 * 10**7, dram_bytes=8 * 10**7,
        )
        assert 0.1 < report.tops_per_watt(1.0) < 30.0

    def test_zero_run(self):
        report = EnergyReport(0, 0, 0, 0, macs=0, cycles=0)
        assert report.tops_per_watt() == 0.0


class TestRunEnergy:
    def test_end_to_end(self):
        from tests.sw.test_runtime import tiny_cnn

        cfg = default_config().with_im2col(True)
        soc = make_soc(gemmini=cfg)
        model = compile_graph(tiny_cnn(32), SoftwareParams.from_config(cfg))
        result = run_model_on_tile(soc.tile, model)
        report = estimate_run_energy(soc, result)
        assert report.total_mj > 0
        assert report.macs == sum(layer.macs for layer in result.layers)

    def test_bigger_input_more_energy(self):
        from tests.sw.test_runtime import tiny_cnn

        cfg = default_config().with_im2col(True)

        def energy(hw):
            soc = make_soc(gemmini=cfg)
            model = compile_graph(tiny_cnn(hw), SoftwareParams.from_config(cfg))
            result = run_model_on_tile(soc.tile, model)
            return estimate_run_energy(soc, result).total_mj

        assert energy(64) > energy(16)
