"""Shared fixtures and hypothesis settings for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


@pytest.fixture(autouse=True)
def _ledger_in_tmp(tmp_path, monkeypatch):
    """Keep tests hermetic: CLI invocations that default their run ledger
    through the environment land in the test's tmp dir, never the repo."""
    monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "test-ledger.jsonl"))


@pytest.fixture(autouse=True)
def _schedule_cache_in_tmp(tmp_path, monkeypatch):
    """Same hermeticity for the tuned-schedule cache: ambient lookups hit a
    per-test file, and any override a CLI invocation installed is cleared."""
    from repro.sw.schedule_cache import set_default_schedule_cache

    monkeypatch.setenv(
        "REPRO_SCHEDULE_CACHE", str(tmp_path / "test-schedules.jsonl")
    )
    set_default_schedule_cache(None)
    yield
    set_default_schedule_cache(None)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def small_config():
    """A 4x4 systolic config small enough for structural simulation."""
    from repro.core.config import GemminiConfig

    return GemminiConfig(
        mesh_rows=4,
        mesh_cols=4,
        tile_rows=1,
        tile_cols=1,
        sp_capacity_bytes=4 * 4 * 256,  # 256 rows of 4 int8 elements
        sp_banks=2,
        acc_capacity_bytes=4 * 16 * 64,  # 64 rows of 4 int32 elements
        acc_banks=2,
    )


@pytest.fixture
def default_config():
    from repro.core.config import default_config as make

    return make()
