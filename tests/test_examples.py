"""Every example script must run to completion from a clean interpreter."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    args = [sys.executable, str(EXAMPLES_DIR / script)]
    if script in ("multicore_partitioning.py", "virtual_memory_tuning.py"):
        args += ["--input-hw", "64"]
    if script == "serving_study.py":
        args += ["--input-hw", "32", "--requests", "5"]
    result = subprocess.run(
        args,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_quickstart_verifies_numerics():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "verified" in result.stdout
    assert "cycles" in result.stdout
