"""Unit tests for the Chrome-trace exporter, validator and metrics export."""

import csv
import json

import pytest

from repro.obs.export import (
    export_metrics_csv,
    export_metrics_json,
    metrics_to_dict,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import MetricStream
from repro.obs.tracer import Tracer


def _events_of(data, ph=None):
    events = data["traceEvents"]
    return [e for e in events if ph is None or e["ph"] == ph]


class TestChromeTraceShape:
    def test_metadata_carries_run_identity(self):
        t = Tracer(run_id="r1", seed=9)
        t.complete("lane", "w", 0.0, 1.0)
        data = to_chrome_trace(t)
        assert data["metadata"]["run_id"] == "r1"
        assert data["metadata"]["seed"] == 9
        assert data["displayTimeUnit"] == "ms"

    def test_lane_layout_pids_and_tids(self):
        t = Tracer()
        t.declare_lane("tile0", process="serve", label="tile0 [big]", sort=0)
        t.declare_lane("tile1", process="serve", label="tile1 [little]", sort=1)
        t.declare_lane("tenant:a", process="traffic")
        t.complete("tile0", "r", 0.0, 1.0)
        t.complete("tile1", "r", 0.0, 1.0)
        t.instant("tenant:a", "arrival", 0.0)
        data = to_chrome_trace(t)
        names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in _events_of(data, "M")
            if e["name"] == "thread_name"
        }
        processes = {
            e["pid"]: e["args"]["name"]
            for e in _events_of(data, "M")
            if e["name"] == "process_name"
        }
        assert set(processes.values()) == {"serve", "traffic"}
        assert "tile0 [big]" in names.values()
        # Lanes of one process share its pid; distinct lanes get distinct tids.
        (serve_pid,) = [pid for pid, name in processes.items() if name == "serve"]
        serve_tids = [tid for (pid, tid) in names if pid == serve_pid]
        assert len(serve_tids) == len(set(serve_tids)) == 2

    def test_undeclared_lane_defaults(self):
        t = Tracer()
        t.complete("mystery", "w", 0.0, 1.0)
        data = to_chrome_trace(t)
        labels = [
            e["args"]["name"] for e in _events_of(data, "M") if e["name"] == "thread_name"
        ]
        assert "mystery" in labels
        assert validate_chrome_trace(data) == []

    def test_ts_scaling_cycles_to_microseconds(self):
        t = Tracer.for_cycles(1.0)  # 1 GHz: 1000 cycles = 1 us
        t.complete("lane", "w", 0.0, 1000.0)
        data = to_chrome_trace(t)
        begin = next(e for e in _events_of(data, "B"))
        end = next(e for e in _events_of(data, "E"))
        assert begin["ts"] == pytest.approx(0.0)
        assert end["ts"] == pytest.approx(1.0)

    def test_nested_spans_emit_laminar_begin_end(self):
        t = Tracer()
        t.complete("lane", "inner", 2.0, 4.0)
        t.complete("lane", "outer", 0.0, 10.0)
        data = to_chrome_trace(t)
        seq = [(e["ph"], e["name"]) for e in data["traceEvents"] if e["ph"] in "BE"]
        assert seq == [("B", "outer"), ("B", "inner"), ("E", "inner"), ("E", "outer")]
        assert validate_chrome_trace(data) == []

    def test_sequential_spans_close_before_next_opens(self):
        t = Tracer()
        t.complete("lane", "a", 0.0, 1.0)
        t.complete("lane", "b", 1.0, 2.0)
        seq = [
            (e["ph"], e["name"])
            for e in to_chrome_trace(t)["traceEvents"]
            if e["ph"] in "BE"
        ]
        assert seq == [("B", "a"), ("E", "a"), ("B", "b"), ("E", "b")]

    def test_instants_and_counters_interleave_in_order(self):
        t = Tracer()
        t.complete("lane", "w", 0.0, 10.0)
        t.instant("lane", "mark", 5.0, {"k": 1})
        t.counter("lane", "depth", 7.0, 3)
        data = to_chrome_trace(t)
        assert validate_chrome_trace(data) == []
        inst = next(e for e in _events_of(data, "i"))
        ctr = next(e for e in _events_of(data, "C"))
        assert inst["s"] == "t" and inst["args"] == {"k": 1}
        assert ctr["args"] == {"depth": 3}
        kinds = [e["ph"] for e in data["traceEvents"] if e["ph"] in "BiCE"]
        assert kinds == ["B", "i", "C", "E"]

    def test_out_of_emission_order_spans_still_validate(self):
        t = Tracer()
        # Emission order deliberately scrambled; export sorts by start.
        t.complete("lane", "late", 5.0, 6.0)
        t.complete("lane", "early", 0.0, 1.0)
        assert validate_chrome_trace(to_chrome_trace(t)) == []

    def test_write_chrome_trace_roundtrip(self, tmp_path):
        t = Tracer(run_id="rt")
        t.complete("lane", "w", 0.0, 1.0)
        path = write_chrome_trace(t, tmp_path / "trace.json")
        data = json.loads(path.read_text())
        assert validate_chrome_trace(data) == []
        assert data["metadata"]["run_id"] == "rt"


class TestValidator:
    def test_valid_empty_shapes(self):
        assert validate_chrome_trace({"traceEvents": "nope"}) == [
            "traceEvents missing or not a list"
        ]
        assert "no events" in validate_chrome_trace({"traceEvents": []})[0]

    def test_missing_required_keys(self):
        out = validate_chrome_trace([{"ph": "B", "ts": 0}])
        assert any("missing" in v for v in out)

    def test_unknown_phase(self):
        out = validate_chrome_trace([{"ph": "Z", "ts": 0, "pid": 1, "tid": 1}])
        assert any("unknown phase" in v for v in out)

    def test_backwards_ts_in_lane(self):
        events = [
            {"ph": "i", "ts": 5, "pid": 1, "tid": 1, "name": "a", "s": "t"},
            {"ph": "i", "ts": 3, "pid": 1, "tid": 1, "name": "b", "s": "t"},
        ]
        out = validate_chrome_trace(events)
        assert any("goes backwards" in v for v in out)

    def test_backwards_ts_other_lane_ok(self):
        events = [
            {"ph": "i", "ts": 5, "pid": 1, "tid": 1, "name": "a", "s": "t"},
            {"ph": "i", "ts": 3, "pid": 1, "tid": 2, "name": "b", "s": "t"},
        ]
        assert validate_chrome_trace(events) == []

    def test_unbalanced_begin(self):
        events = [{"ph": "B", "ts": 0, "pid": 1, "tid": 1, "name": "open"}]
        out = validate_chrome_trace(events)
        assert any("unclosed" in v for v in out)

    def test_mismatched_end_name(self):
        events = [
            {"ph": "B", "ts": 0, "pid": 1, "tid": 1, "name": "a"},
            {"ph": "E", "ts": 1, "pid": 1, "tid": 1, "name": "b"},
        ]
        out = validate_chrome_trace(events)
        assert any("closes span" in v for v in out)

    def test_end_without_begin(self):
        events = [{"ph": "E", "ts": 1, "pid": 1, "tid": 1, "name": "a"}]
        out = validate_chrome_trace(events)
        assert any("E without matching B" in v for v in out)


class TestMetricsExport:
    def _stream(self):
        ms = MetricStream()
        ms.mark("completed", 3)
        ms.observe("latency_ms", 1.0)
        ms.observe("latency_ms", 2.0)
        ms.tick(0.1)
        ms.tick(0.2, {"goodput_qps": 5.0})
        return ms

    def test_metrics_to_dict_shape(self):
        doc = metrics_to_dict(self._stream(), meta={"command": "serve"})
        assert doc["meta"]["command"] == "serve"
        # the stream's own run-id stamp joins metrics files to ledger records
        assert doc["meta"]["run_id"].startswith("metrics-")
        assert len(doc["snapshots"]) == 2
        assert doc["snapshots"][1]["goodput_qps"] == 5.0
        assert doc["final"]["completed"] == 3

    def test_json_roundtrip(self, tmp_path):
        path = export_metrics_json(self._stream(), tmp_path / "m.json", meta={"seed": 1})
        doc = json.loads(path.read_text())
        assert doc["meta"]["seed"] == 1
        assert doc["snapshots"][0]["t"] == 0.1

    def test_csv_one_row_per_snapshot_plus_final(self, tmp_path):
        path = export_metrics_csv(self._stream(), tmp_path / "m.csv")
        rows = list(csv.DictReader(path.open()))
        assert len(rows) == 3  # two snapshots + final
        assert rows[0]["t"] == "0.1"
        assert rows[-1]["t"] == ""  # final row is unstamped
        assert rows[-1]["completed"] == "3"
