"""Unit tests for the run-scoped Tracer and its null form."""

import pytest

from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer


class TestTracerConstruction:
    def test_default_run_ids_are_unique(self):
        a, b = Tracer(), Tracer()
        assert a.run_id != b.run_id

    def test_explicit_identity(self):
        t = Tracer(run_id="my-run", seed=42)
        assert t.run_id == "my-run"
        assert t.seed == 42

    def test_for_cycles_scale(self):
        # 1 GHz: one cycle is one nanosecond = 1e-3 Chrome microseconds.
        t = Tracer.for_cycles(1.0)
        assert t.ts_scale == pytest.approx(1e-3)
        assert Tracer.for_cycles(2.0).ts_scale == pytest.approx(5e-4)

    def test_wall_scale(self):
        assert Tracer.wall().ts_scale == pytest.approx(1e6)

    def test_enabled_and_truthy(self):
        assert Tracer()
        assert Tracer().enabled


class TestEvents:
    def test_complete_records_span(self):
        t = Tracer()
        t.complete("lane", "work", 10.0, 20.0, {"k": 1})
        assert t.events() == [("X", "lane", "work", 10.0, 20.0, {"k": 1})]
        assert t.span_count() == 1

    def test_instant_and_counter(self):
        t = Tracer()
        t.instant("lane", "arrival", 5.0)
        t.counter("lane", "depth", 6.0, 3)
        kinds = [e[0] for e in t.events()]
        assert kinds == ["i", "C"]
        assert t.span_count() == 0

    def test_begin_end_stack_per_lane(self):
        t = Tracer()
        t.begin("lane", "outer", 0.0)
        t.begin("lane", "inner", 1.0)
        t.end("lane", 2.0)
        t.end("lane", 3.0)
        spans = [(e[2], e[3], e[4]) for e in t.events()]
        assert spans == [("inner", 1.0, 2.0), ("outer", 0.0, 3.0)]

    def test_end_without_begin_raises(self):
        with pytest.raises(ValueError, match="no open span"):
            Tracer().end("lane", 1.0)

    def test_span_context_manager_uses_wall_clock(self):
        t = Tracer.wall()
        with t.span("lane", "work", {"x": 1}):
            pass
        ((ph, lane, name, start, end, args),) = t.events()
        assert (ph, lane, name, args) == ("X", "lane", "work", {"x": 1})
        assert 0.0 <= start <= end

    def test_now_is_monotonic_enough(self):
        t = Tracer.wall()
        assert t.now() >= 0.0
        import time

        assert t.to_timeline(time.time()) == pytest.approx(t.now(), abs=0.05)


class TestLanes:
    def test_first_declaration_wins(self):
        t = Tracer()
        t.declare_lane("tile0", process="serve", label="big tile", sort=1)
        t.declare_lane("tile0", process="other", label="changed", sort=9)
        assert t.lanes() == {"tile0": ("serve", "big tile", 1)}

    def test_label_defaults_to_lane_key(self):
        t = Tracer()
        t.declare_lane("tile1")
        assert t.lanes()["tile1"] == ("run", "tile1", None)


class TestNullTracer:
    def test_singleton_is_falsy_and_disabled(self):
        assert not NULL_TRACER
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, Tracer)  # call sites need one type

    def test_recording_methods_are_noops(self):
        t = NullTracer()
        t.declare_lane("l", process="p")
        t.complete("l", "n", 0.0, 1.0, {"a": 1})
        t.begin("l", "n", 0.0)
        t.end("l", 1.0)  # must not raise despite no open span
        t.instant("l", "n", 0.0)
        t.counter("l", "n", 0.0, 1)
        assert t.events() == []
        assert t.lanes() == {}
        assert t.span_count() == 0

    def test_now_skips_the_clock(self):
        assert NULL_TRACER.now() == 0.0
