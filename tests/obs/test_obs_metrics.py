"""Unit tests for P² streaming quantiles and the MetricStream."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import NULL_METRICS, MetricStream, NullMetricStream, P2Quantile


def nearest_rank(samples, p):
    """Histogram's convention: smallest v with P(sample <= v) >= p."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(len(ordered) * p))
    return ordered[min(rank, len(ordered)) - 1]


class TestP2Quantile:
    def test_rejects_degenerate_p(self):
        for p in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                P2Quantile(p)

    def test_empty_is_zero(self):
        assert P2Quantile(0.5).value() == 0.0

    def test_exact_below_five_samples(self):
        est = P2Quantile(0.5)
        for x in (9.0, 1.0, 5.0):
            est.observe(x)
        assert est.value() == 5.0  # nearest-rank median of {1, 5, 9}
        assert est.count == 3

    def test_single_sample(self):
        est = P2Quantile(0.99)
        est.observe(7.0)
        assert est.value() == 7.0

    @pytest.mark.parametrize("p", [0.5, 0.95, 0.99])
    def test_uniform_accuracy(self, p):
        rng = random.Random(1)
        est = P2Quantile(p)
        samples = [rng.random() for _ in range(20_000)]
        for x in samples:
            est.observe(x)
        exact = sorted(samples)[int(p * len(samples))]
        assert est.value() == pytest.approx(exact, abs=0.02)

    def test_exponential_tail_accuracy(self):
        """Latency-shaped (heavy-tailed) distribution: the p99 estimate
        must land within a few percent of the exact order statistic."""
        rng = random.Random(2)
        est = P2Quantile(0.99)
        samples = [rng.expovariate(1.0) for _ in range(20_000)]
        for x in samples:
            est.observe(x)
        exact = sorted(samples)[int(0.99 * len(samples))]
        assert est.value() == pytest.approx(exact, rel=0.10)

    def test_monotone_input_is_handled(self):
        est = P2Quantile(0.5)
        for x in range(1000):
            est.observe(float(x))
        assert est.value() == pytest.approx(500.0, rel=0.05)

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    @pytest.mark.parametrize("p", [0.5, 0.95, 0.99])
    def test_exact_nearest_rank_below_five_samples(self, n, p):
        """Under five observations the estimator must return the exact
        nearest-rank order statistic, not an interpolation."""
        rng = random.Random(10 * n + int(100 * p))
        samples = [rng.expovariate(0.2) for _ in range(n)]
        est = P2Quantile(p)
        for x in samples:
            est.observe(x)
        assert est.value() == nearest_rank(samples, p)
        assert est.value() in samples  # an actual observation, by definition

    @settings(max_examples=200, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=0.01, max_value=1e4, allow_nan=False),
            min_size=1,
            max_size=400,
        ),
        p=st.sampled_from([0.5, 0.95, 0.99]),
    )
    def test_property_percentile_tolerance(self, samples, p):
        """On latency-shaped (positive, bounded) samples of any length the
        stream's estimate stays within the observed range and, for the
        exact-prefix regime, equals the nearest-rank statistic."""
        ms = MetricStream()
        for x in samples:
            ms.observe("latency_ms", x)
        key = f"latency_ms_p{round(p * 100)}"
        estimate = ms.current()[key]
        assert min(samples) <= estimate <= max(samples)
        if len(samples) < 5:
            assert estimate == nearest_rank(samples, p)


class TestMetricStream:
    def test_observe_builds_distribution_summary(self):
        ms = MetricStream()
        for x in (1.0, 2.0, 3.0, 4.0):
            ms.observe("latency_ms", x)
        snap = ms.current()
        assert snap["latency_ms_count"] == 4.0
        assert snap["latency_ms_mean"] == pytest.approx(2.5)
        assert snap["latency_ms_min"] == 1.0
        assert snap["latency_ms_max"] == 4.0
        assert "latency_ms_p50" in snap and "latency_ms_p99" in snap

    def test_mark_and_acc_and_count(self):
        ms = MetricStream()
        ms.mark("completed")
        ms.mark("completed", 3)
        ms.acc("busy", 10.5)
        ms.acc("busy", 4.5)
        assert ms.count("completed") == 4
        assert ms.current()["busy"] == pytest.approx(15.0)
        assert ms.count("never") == 0

    def test_due_every_n_completions(self):
        ms = MetricStream(every=4)
        hits = []
        for i in range(1, 9):
            ms.mark("completed")
            hits.append(ms.due())
        assert hits == [False, False, False, True, False, False, False, True]

    def test_tick_snapshots_and_callback(self):
        seen = []
        ms = MetricStream(on_snapshot=seen.append)
        ms.mark("completed", 2)
        snap = ms.tick(0.5, {"goodput_qps": 7.0})
        assert snap["t"] == 0.5
        assert snap["completed"] == 2
        assert snap["goodput_qps"] == 7.0
        assert ms.snapshots == [snap]
        assert seen == [snap]

    def test_every_must_be_positive(self):
        with pytest.raises(ValueError):
            MetricStream(every=0)

    def test_truthy(self):
        assert MetricStream()


class TestNullMetricStream:
    def test_falsy_noop(self):
        ms = NullMetricStream()
        assert not ms
        assert not NULL_METRICS
        ms.observe("x", 1.0)
        ms.mark("completed")
        ms.acc("busy", 1.0)
        assert ms.due() is False
        assert ms.tick(1.0, {"k": 1}) == {}
        assert ms.snapshots == []
        assert ms.current() == {}
        assert isinstance(ms, MetricStream)  # call sites need one type
