"""Unit tests for trace diffing (``gemmini-repro trace --diff``)."""

import json

from repro.obs import to_chrome_trace
from repro.obs.diff import (
    SpanDelta,
    diff_traces,
    format_trace_diff,
    trace_diff_to_dict,
)
from repro.obs.tracer import Tracer


def _trace(run_id, spans, queue_ms=None):
    """Build a Chrome-trace document from (lane, name, start, end) tuples."""
    tracer = Tracer(run_id=run_id, seed=0)
    tracer.declare_lane("tile0", process="soc", label="tile 0", sort=0)
    for lane, name, start, end in spans:
        args = {"queue_ms": queue_ms} if queue_ms is not None else None
        tracer.complete(lane, name, start, end, args)
    return to_chrome_trace(tracer)


class TestDiffTraces:
    def test_identical_traces_diff_to_zero(self):
        spans = [("tile0", "request[0]", 0.0, 5.0), ("tile0", "request[1]", 6.0, 9.0)]
        diff = diff_traces(_trace("a", spans), _trace("b", spans))
        assert diff.run_a == "a" and diff.run_b == "b"
        (delta,) = diff.spans
        assert delta.stem == "request"  # instance suffixes fold into the stem
        assert delta.count_a == delta.count_b == 2
        assert delta.total_delta_us == 0.0
        assert diff.only_a == [] and diff.only_b == []

    def test_slower_span_shows_positive_delta(self):
        base = [("tile0", "conv[0]", 0.0, 2.0)]
        slow = [("tile0", "conv[0]", 0.0, 6.0)]
        diff = diff_traces(_trace("a", base), _trace("b", slow))
        (delta,) = diff.spans
        assert delta.total_delta_us > 0
        assert delta.rel_total > 1.0  # 2ms -> 6ms

    def test_only_a_only_b_stems(self):
        diff = diff_traces(
            _trace("a", [("tile0", "gone", 0.0, 1.0)]),
            _trace("b", [("tile0", "fresh", 0.0, 1.0)]),
        )
        assert diff.only_a == ["gone"]
        assert diff.only_b == ["fresh"]
        assert {d.stem for d in diff.spans} == {"gone", "fresh"}

    def test_lane_busy_and_queue_deltas(self):
        diff = diff_traces(
            _trace("a", [("tile0", "req", 0.0, 2.0)], queue_ms=1.0),
            _trace("b", [("tile0", "req", 0.0, 4.0)], queue_ms=3.0),
        )
        (lane,) = [d for d in diff.lanes if d.lane == "tile 0"]
        assert lane.busy_delta_us > 0
        assert lane.queue_delta_us == 2_000.0  # 1ms -> 3ms

    def test_top_by_total_delta_ranks_by_magnitude(self):
        base = [("tile0", "big", 0.0, 10.0), ("tile0", "small", 11.0, 12.0)]
        cand = [("tile0", "big", 0.0, 30.0), ("tile0", "small", 31.0, 32.5)]
        diff = diff_traces(_trace("a", base), _trace("b", cand))
        assert [d.stem for d in diff.top_by_total_delta(2)] == ["big", "small"]
        assert [d.stem for d in diff.top_by_total_delta(1)] == ["big"]


class TestSpanDelta:
    def test_rel_total_has_no_infinities(self):
        assert SpanDelta(stem="new", total_us_b=5.0).rel_total == 1.0
        assert SpanDelta(stem="nothing").rel_total == 0.0


class TestRendering:
    def test_to_dict_round_trips_to_json(self):
        # Default tracer ts_scale is 1.0: raw timestamps are already µs.
        diff = diff_traces(
            _trace("a", [("tile0", "req", 0.0, 2000.0)]),
            _trace("b", [("tile0", "req", 0.0, 3000.0)]),
        )
        doc = json.loads(json.dumps(trace_diff_to_dict(diff)))
        assert doc["run_a"] == "a" and doc["run_b"] == "b"
        assert doc["spans"][0]["stem"] == "req"
        assert doc["spans"][0]["total_delta_us"] == 1_000.0

    def test_format_names_runs_and_stems(self):
        diff = diff_traces(
            _trace("a", [("tile0", "conv", 0.0, 2.0)]),
            _trace("b", [("tile0", "conv", 0.0, 9.0)]),
        )
        text = format_trace_diff(diff)
        assert "a -> b" in text
        assert "conv" in text

    def test_format_empty_diff(self):
        text = format_trace_diff(diff_traces(_trace("a", []), _trace("b", [])))
        assert "no spans" in text
