"""Unit tests for trace summarisation (the `gemmini-repro trace` backend)."""

import json

import pytest

from repro.obs.export import to_chrome_trace
from repro.obs.summary import (
    _stem,
    format_trace_summary,
    load_trace,
    summarize_trace,
)
from repro.obs.tracer import Tracer


def _sample_tracer():
    t = Tracer(run_id="sum", seed=4)
    t.declare_lane("tile0", process="serve", label="tile0 [big]", sort=0)
    t.declare_lane("tenant:a", process="traffic")
    t.declare_lane("cache", process="runner")
    # Two request spans of the same family, with queueing args.
    t.complete("tile0", "teamA[0]", 0.0, 10.0, {"queue_ms": 2.0})
    t.complete("tile0", "teamA[1]", 10.0, 30.0, {"queue_ms": 0.5})
    # A nested child inside a wrapper span on another lane.
    t.complete("tenant:a", "inner", 2.0, 4.0)
    t.complete("tenant:a", "outer[x]", 0.0, 10.0)
    t.instant("tile0", "arrival", 0.0)
    t.instant("tile0", "arrival", 5.0)
    t.counter("cache", "cache_hits", 1.0, 3)
    t.counter("cache", "cache_misses", 1.0, 1)
    t.counter("cache", "cache_hits", 2.0, 6)  # last sample wins
    return t


class TestStem:
    @pytest.mark.parametrize(
        "name,stem",
        [
            ("teamA[17]", "teamA"),
            ("dse[dim=16,tile=2]", "dse"),
            ("plain", "plain"),
            ("gen[3]", "gen"),
            ("a[1]b", "a[1]b"),  # only a trailing suffix folds
        ],
    )
    def test_stem(self, name, stem):
        assert _stem(name) == stem


class TestSummarize:
    def test_span_aggregation_by_stem(self):
        s = summarize_trace(to_chrome_trace(_sample_tracer()))
        assert s.run_id == "sum" and s.seed == 4
        team = s.spans["teamA"]
        assert team.count == 2
        # ts_scale defaults to 1.0: raw units ARE microseconds here.
        assert team.total_us == pytest.approx(30.0)
        assert team.max_us == pytest.approx(20.0)
        assert team.mean_us == pytest.approx(15.0)
        assert s.span_count == 4

    def test_self_time_excludes_children(self):
        s = summarize_trace(to_chrome_trace(_sample_tracer()))
        outer = s.spans["outer"]
        assert outer.total_us == pytest.approx(10.0)
        assert outer.self_us == pytest.approx(8.0)  # minus the 2us inner
        assert s.spans["inner"].self_us == pytest.approx(2.0)

    def test_lane_queue_vs_service(self):
        s = summarize_trace(to_chrome_trace(_sample_tracer()))
        tile = s.lanes[("serve", "tile0 [big]")]
        assert tile.spans == 2
        assert tile.busy_us == pytest.approx(30.0)
        assert tile.queue_us == pytest.approx(2.5e3)  # 2.5 queue_ms in us
        assert tile.utilization == pytest.approx(1.0)

    def test_counters_last_sample_wins_and_ratio(self):
        s = summarize_trace(to_chrome_trace(_sample_tracer()))
        assert s.counters["cache_hits"] == 6.0
        assert s.counters["cache_misses"] == 1.0
        assert s.cache_hit_ratio() == pytest.approx(6 / 7)

    def test_instants_counted_by_stem(self):
        s = summarize_trace(to_chrome_trace(_sample_tracer()))
        assert s.instants == {"arrival": 2}

    def test_no_cache_counters_means_no_ratio(self):
        t = Tracer()
        t.complete("lane", "w", 0.0, 1.0)
        assert summarize_trace(to_chrome_trace(t)).cache_hit_ratio() is None

    def test_accepts_x_phase_foreign_traces(self):
        events = [
            {"ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 1, "name": "ext[0]"},
            {"ph": "X", "ts": 10, "dur": 5, "pid": 1, "tid": 1, "name": "ext[1]"},
        ]
        s = summarize_trace(events)
        assert s.spans["ext"].count == 2
        assert s.spans["ext"].total_us == pytest.approx(15.0)

    def test_top_by_total_ordering(self):
        s = summarize_trace(to_chrome_trace(_sample_tracer()))
        names = [sp.name for sp in s.top_by_total(2)]
        assert names[0] == "teamA"

    def test_load_trace(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps(to_chrome_trace(_sample_tracer())))
        assert summarize_trace(load_trace(path)).span_count == 4


class TestFormat:
    def test_rendered_summary_mentions_the_essentials(self):
        text = format_trace_summary(summarize_trace(to_chrome_trace(_sample_tracer())))
        assert "run sum" in text and "seed 4" in text
        assert "teamA" in text
        assert "queue vs service per lane" in text
        assert "cache" in text
        assert "arrival x2" in text

    def test_empty_trace_formats(self):
        text = format_trace_summary(summarize_trace([]))
        assert "0 events" in text
