"""Unit tests for the statistical regression detector."""

import pytest

from repro.obs.ledger import RunRecord
from repro.obs.regress import (
    bootstrap_rel_change_ci,
    compare_records,
    compare_samples,
    detect_regressions,
    format_regression_report,
    metric_direction,
)


def _rec(kind, name, wall_s=None, metrics=None, run_id=None):
    _rec.n += 1
    return RunRecord(
        run_id=run_id or f"r{_rec.n}",
        kind=kind,
        name=name,
        wall_s=wall_s,
        metrics=dict(metrics or {}),
    )


_rec.n = 0


class TestMetricDirection:
    @pytest.mark.parametrize(
        "name",
        ["p99_ms", "latency_ms", "slo_violation_rate", "l2_miss_rate", "wall_s",
         "total_cycles", "makespan_ms", "energy_mj", "queue_mean_ms", "dropped"],
    )
    def test_lower_is_better(self, name):
        assert metric_direction(name) == "lower"

    @pytest.mark.parametrize(
        "name",
        ["goodput_qps", "throughput_qps", "fps", "speedup", "hit_rate",
         "cache_hit_ratio", "fairness", "hypervolume", "replayed"],
    )
    def test_higher_is_better(self, name):
        assert metric_direction(name) == "higher"

    @pytest.mark.parametrize("name", ["completed", "issued", "front_size", "evaluations"])
    def test_informational_metrics_have_no_direction(self, name):
        assert metric_direction(name) is None


class TestBootstrapCI:
    def test_identical_samples_give_zero_interval(self):
        low, high = bootstrap_rel_change_ci([2.0, 2.0, 2.0], [2.0, 2.0, 2.0])
        assert low == 0.0 and high == 0.0

    def test_clear_shift_excludes_zero(self):
        base = [1.0, 1.05, 0.95, 1.02, 0.98]
        cand = [2.0, 2.1, 1.9, 2.05, 1.95]
        low, high = bootstrap_rel_change_ci(base, cand)
        assert low > 0.5  # roughly a 2x slowdown
        assert high < 1.5

    def test_deterministic_for_seed(self):
        base, cand = [1.0, 1.2, 0.9], [1.1, 1.3, 1.0]
        assert bootstrap_rel_change_ci(base, cand, seed=3) == bootstrap_rel_change_ci(
            base, cand, seed=3
        )

    def test_empty_side_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_rel_change_ci([], [1.0])


class TestCompareSamples:
    def test_no_change_is_not_significant(self):
        delta = compare_samples("wall_s", [1.0, 1.01, 0.99], [1.0, 1.02, 0.98])
        assert not delta.significant
        assert not delta.regressed

    def test_doubled_wall_time_regresses(self):
        delta = compare_samples("wall_s", [1.0, 1.02, 0.98], [2.0, 2.02, 1.98])
        assert delta.significant and delta.regressed and not delta.improved
        assert delta.ci_low is not None and delta.ci_low > 0

    def test_improvement_is_not_a_regression(self):
        delta = compare_samples("wall_s", [2.0, 2.02, 1.98], [1.0, 1.02, 0.98])
        assert delta.significant and delta.improved and not delta.regressed

    def test_higher_better_drop_regresses(self):
        delta = compare_samples(
            "goodput_qps", [100.0, 101.0, 99.0], [50.0, 51.0, 49.0]
        )
        assert delta.regressed

    def test_unknown_direction_never_gates(self):
        delta = compare_samples("front_size", [10.0, 10.0], [3.0, 3.0])
        assert delta.direction is None
        assert not delta.regressed and not delta.improved

    def test_best_of_n_points(self):
        delta = compare_samples("wall_s", [1.0, 5.0], [1.5, 9.0])
        assert delta.baseline == 1.0  # min-of-N for lower-is-better
        assert delta.candidate == 1.5
        delta = compare_samples("goodput_qps", [10.0, 20.0], [5.0, 30.0])
        assert delta.baseline == 20.0  # max-of-N for higher-is-better
        assert delta.candidate == 30.0

    def test_single_sample_uses_conservative_fallback(self):
        small = compare_samples("wall_s", [1.0], [1.3])
        assert not small.significant  # 30% < 50% fallback threshold
        assert "single-sample" in small.note
        big = compare_samples("wall_s", [1.0], [2.2])
        assert big.significant and big.regressed

    def test_noise_floor_shields_tiny_but_consistent_shifts(self):
        delta = compare_samples(
            "wall_s", [1.0, 1.0, 1.0], [1.02, 1.02, 1.02], noise_floor=0.05
        )
        assert not delta.significant  # CI excludes 0 but |rel| < floor

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            compare_samples("x", [], [1.0])


class TestDetectRegressions:
    def test_clean_history_passes(self):
        base = [_rec("bench", "t1", wall_s=1.0 + 0.01 * i) for i in range(3)]
        cand = [_rec("bench", "t1", wall_s=1.0 + 0.012 * i) for i in range(3)]
        report = detect_regressions(base, cand)
        assert report.ok
        assert report.keys_compared == [("bench", "t1")]

    def test_injected_slowdown_trips_the_gate(self):
        base = [_rec("bench", "t1", wall_s=1.0 + 0.01 * i) for i in range(3)]
        cand = [_rec("bench", "t1", wall_s=2.0 + 0.01 * i) for i in range(3)]
        report = detect_regressions(base, cand)
        assert not report.ok
        assert [d.metric for d in report.regressions] == ["wall_s"]

    def test_groups_compare_independently(self):
        base = [
            _rec("bench", "fast", wall_s=1.0),
            _rec("bench", "slow", wall_s=10.0),
        ]
        cand = [
            _rec("bench", "fast", wall_s=1.0),
            _rec("bench", "slow", wall_s=30.0),
        ]
        report = detect_regressions(base, cand)
        assert [d.key for d in report.regressions] == [("bench", "slow")]

    def test_one_sided_groups_never_gate(self):
        base = [_rec("bench", "removed", wall_s=1.0)]
        cand = [_rec("bench", "added", wall_s=99.0)]
        report = detect_regressions(base, cand)
        assert report.ok
        assert report.keys_baseline_only == [("bench", "removed")]
        assert report.keys_candidate_only == [("bench", "added")]

    def test_metric_subset_and_last_window(self):
        base = [_rec("serve", "mix", metrics={"p99_ms": 5.0, "goodput_qps": 10.0})
                for _ in range(2)]
        cand = [_rec("serve", "mix", metrics={"p99_ms": 50.0, "goodput_qps": 1.0})
                for _ in range(2)]
        report = detect_regressions(base, cand, metrics=["goodput_qps"], last=1)
        assert {d.metric for d in report.deltas} == {"goodput_qps"}
        assert not report.ok

    def test_include_wall_folds_wall_time_in(self):
        base = [_rec("bench", "t", wall_s=1.0, metrics={"fps": 10.0})]
        cand = [_rec("bench", "t", wall_s=1.0, metrics={"fps": 10.0})]
        with_wall = detect_regressions(base, cand)
        without = detect_regressions(base, cand, include_wall=False)
        assert "wall_s" in {d.metric for d in with_wall.deltas}
        assert "wall_s" not in {d.metric for d in without.deltas}

    def test_to_dict_round_trips_to_json(self):
        import json

        base = [_rec("bench", "t1", wall_s=1.0)]
        cand = [_rec("bench", "t1", wall_s=3.0)]
        doc = json.loads(json.dumps(detect_regressions(base, cand).to_dict()))
        assert doc["ok"] is False
        assert doc["regressions"][0]["metric"] == "wall_s"


class TestCompareRecords:
    def test_shared_metrics_only(self):
        a = _rec("serve", "m", wall_s=1.0, metrics={"p99_ms": 5.0, "only_a": 1.0})
        b = _rec("serve", "m", wall_s=1.1, metrics={"p99_ms": 5.5, "only_b": 2.0})
        report = compare_records(a, b)
        assert {d.metric for d in report.deltas} == {"p99_ms", "wall_s"}
        assert report.ok  # 10% shifts are below the single-sample threshold

    def test_large_shift_is_flagged(self):
        a = _rec("serve", "m", metrics={"p99_ms": 5.0})
        b = _rec("serve", "m", metrics={"p99_ms": 50.0})
        report = compare_records(a, b)
        assert not report.ok


class TestFormatReport:
    def test_mentions_regressed_metric(self):
        base = [_rec("bench", "t1", wall_s=1.0 + 0.01 * i) for i in range(3)]
        cand = [_rec("bench", "t1", wall_s=2.0 + 0.01 * i) for i in range(3)]
        text = format_regression_report(detect_regressions(base, cand))
        assert "REGRESSION: bench/t1:wall_s" in text

    def test_clean_report_says_so(self):
        base = [_rec("bench", "t1", wall_s=1.0)]
        cand = [_rec("bench", "t1", wall_s=1.0)]
        text = format_regression_report(detect_regressions(base, cand))
        assert "no significant regression" in text

    def test_new_groups_noted(self):
        report = detect_regressions(
            [_rec("bench", "old", wall_s=1.0)], [_rec("bench", "new", wall_s=1.0)]
        )
        assert "new (ungated) groups: bench/new" in format_regression_report(report)
