"""Unit tests for the provenance-stamped run ledger."""

import json
import multiprocessing
import os

import pytest

from repro.obs.ledger import (
    NULL_LEDGER,
    SCHEMA_VERSION,
    NullLedger,
    RunLedger,
    RunRecord,
    default_ledger_path,
    ledger_from_env,
    merge_ledgers,
    provenance,
)


class TestProvenance:
    def test_core_fields(self):
        prov = provenance()
        assert prov["python"]
        assert prov["numpy"]
        assert isinstance(prov["argv"], list)
        assert prov["host"]["platform"]
        assert prov["host"]["cpus"] >= 1

    def test_git_fields_inside_checkout(self):
        prov = provenance()
        # The test suite runs from a checkout; the rev must resolve and the
        # dirty flag must be a real answer, not unknown.
        if prov["git_rev"] is not None:
            assert len(prov["git_rev"]) == 40
            assert prov["git_dirty"] in (True, False)

    def test_cached_per_process(self):
        assert provenance() is provenance()


class TestRunRecord:
    def test_round_trip(self):
        record = RunRecord(
            run_id="run-abc-1",
            kind="serve",
            name="fcfs:resnet50",
            seed=7,
            ts=123.5,
            wall_s=2.5,
            config_hash="deadbeef",
            workload_hash="cafe",
            workload={"tiles": 2},
            metrics={"p99_ms": 4.2},
            provenance={"git_rev": "x" * 40},
        )
        back = RunRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert back == record
        assert back.schema == SCHEMA_VERSION
        assert back.git_rev == "x" * 40

    def test_tolerant_decode(self):
        back = RunRecord.from_dict({"run_id": "r1", "unknown_future_field": 1})
        assert back.run_id == "r1"
        assert back.kind == "?"
        assert back.metrics == {}

    def test_decode_drops_non_numeric_metrics(self):
        back = RunRecord.from_dict(
            {"run_id": "r1", "metrics": {"ok": 1.5, "label": "x", "flag": True}}
        )
        assert back.metrics == {"ok": 1.5}


class TestRunLedger:
    def test_record_appends_stamped_line(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        record = ledger.record(
            "run", "resnet50", seed=0, wall_s=1.0, metrics={"fps": 30.0}
        )
        assert record.run_id.startswith("run-")
        assert record.provenance["python"]
        assert record.ts > 0
        (loaded,) = ledger.records()
        assert loaded.run_id == record.run_id
        assert loaded.metrics == {"fps": 30.0}
        assert loaded.schema == SCHEMA_VERSION

    def test_one_line_per_record(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        for i in range(5):
            ledger.record("bench", f"b{i}")
        lines = (tmp_path / "ledger.jsonl").read_text().splitlines()
        assert len(lines) == 5
        assert all(json.loads(line)["schema"] == SCHEMA_VERSION for line in lines)

    def test_missing_file_reads_empty(self, tmp_path):
        ledger = RunLedger(tmp_path / "nope.jsonl")
        assert ledger.records() == []
        assert len(ledger) == 0
        assert list(ledger) == []

    def test_truncated_final_line_warns_and_skips(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.record("run", "ok")
        with path.open("a") as fh:
            fh.write('{"schema": 1, "run_id": "half')  # killed mid-append
        with pytest.warns(RuntimeWarning, match="truncated final line"):
            records = ledger.records()
        assert len(records) == 1
        assert records[0].name == "ok"

    def test_corrupt_middle_line_costs_only_itself(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.record("run", "first")
        with path.open("a") as fh:
            fh.write("not json at all\n")
            fh.write('[1, 2, 3]\n')  # parses, but is not a record object
        ledger.record("run", "last")
        with pytest.warns(RuntimeWarning):
            records = ledger.records()
        assert [r.name for r in records] == ["first", "last"]

    def test_history_filters_and_limits(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        for i in range(4):
            ledger.record("bench", "a")
        ledger.record("serve", "b")
        assert len(ledger.history(kind="bench")) == 4
        assert len(ledger.history(kind="bench", limit=2)) == 2
        assert [r.name for r in ledger.history(name="b")] == ["b"]
        assert ledger.history(kind="dse") == []

    def test_find_by_prefix(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        record = ledger.record("run", "target")
        assert ledger.find(record.run_id[:10]).run_id == record.run_id
        with pytest.raises(KeyError, match="no ledger record"):
            ledger.find("zzz")

    def test_find_ambiguous_prefix(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.record("run", "a")
        ledger.record("run", "b")
        with pytest.raises(KeyError, match="ambiguous"):
            ledger.find("run-")

    def test_truthy(self, tmp_path):
        assert RunLedger(tmp_path / "ledger.jsonl")


class TestConcurrentAppends:
    def test_parallel_writers_never_interleave(self, tmp_path):
        """N processes append in lockstep; every line must parse and every
        record must survive (single O_APPEND write + flock per record)."""
        path = tmp_path / "ledger.jsonl"
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(4)
        procs = [
            ctx.Process(target=_hammer, args=(str(path), barrier, worker))
            for worker in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        lines = path.read_text().splitlines()
        assert len(lines) == 4 * 25
        names = [json.loads(line)["name"] for line in lines]
        for worker in range(4):
            assert sum(n.startswith(f"w{worker}-") for n in names) == 25
        ledger = RunLedger(path)
        assert len(ledger.records()) == 100
        assert len({r.run_id for r in ledger.records()}) == 100


def _hammer(path: str, barrier, worker: int) -> None:
    ledger = RunLedger(path)
    barrier.wait()
    for i in range(25):
        ledger.record("bench", f"w{worker}-{i}", metrics={"i": float(i)})


class TestNullLedger:
    def test_falsy_noop(self, tmp_path):
        null = NullLedger()
        assert not null
        assert not NULL_LEDGER
        record = null.record("run", "x", metrics={"a": 1.0})
        assert record.run_id == "null"
        assert null.records() == []
        assert isinstance(null, RunLedger)  # call sites need one type

    def test_append_does_not_write(self):
        NULL_LEDGER.append(RunRecord(run_id="r", kind="run", name="n"))
        assert NULL_LEDGER.records() == []


class TestEnvironment:
    def test_default_path(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        assert str(default_ledger_path()).endswith("ledger.jsonl")
        assert ledger_from_env()

    def test_env_path(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "custom.jsonl"))
        assert default_ledger_path() == tmp_path / "custom.jsonl"
        ledger = ledger_from_env()
        assert ledger.path == tmp_path / "custom.jsonl"

    @pytest.mark.parametrize("value", ["0", "off", "none", "disabled", "OFF"])
    def test_env_disabled(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_LEDGER", value)
        assert not ledger_from_env()


class TestMergeLedgers:
    def test_dedup_by_run_id(self, tmp_path):
        a = RunLedger(tmp_path / "a.jsonl")
        b = RunLedger(tmp_path / "b.jsonl")
        shared = a.record("run", "shared")
        b.append(shared)
        a.record("run", "only-a")
        b.record("run", "only-b")
        dest = tmp_path / "merged.jsonl"
        written = merge_ledgers([a, b], dest)
        assert written == 3
        merged = RunLedger(dest)
        assert len({r.run_id for r in merged.records()}) == 3

    def test_paths_coerce_and_missing_sources_skip(self, tmp_path):
        a = RunLedger(tmp_path / "a.jsonl")
        a.record("run", "x")
        written = merge_ledgers(
            [str(tmp_path / "a.jsonl"), str(tmp_path / "missing.jsonl")],
            str(tmp_path / "out.jsonl"),
        )
        assert written == 1

    def test_idempotent(self, tmp_path):
        a = RunLedger(tmp_path / "a.jsonl")
        a.record("run", "x")
        dest = tmp_path / "out.jsonl"
        assert merge_ledgers([a], dest) == 1
        assert merge_ledgers([a], dest) == 0


def test_run_ids_distinct_across_processes(tmp_path):
    """Two fresh interpreters minting ids must not collide (the regression
    gate dedups baseline vs candidate by run id across CI runs)."""
    import subprocess
    import sys

    cmd = [sys.executable, "-c", "from repro.obs import new_run_id; print(new_run_id())"]
    env = dict(os.environ)
    ids = {
        subprocess.run(cmd, capture_output=True, text=True, env=env, check=True).stdout.strip()
        for _ in range(2)
    }
    assert len(ids) == 2
