"""Serving-level guarantees of the trace record/replay fast path.

Two contracts, mirroring the engine's design:

* **Uncontended, single tenant** — the replayed simulation is *bitwise
  identical* to the recording path: same request log, same report, same
  memory-system counters.
* **Contended, multi tenant** — replay re-resolves shared-resource
  interactions per macro-op, so end-to-end metrics track the recording
  path within a documented tolerance (per-tenant mean within 10%, p99
  within 15%, makespan within 5%; observed errors are well under 3%).
"""

from dataclasses import replace

from repro.core.config import default_config
from repro.serve import TenantSpec, TrafficProfile, simulate_serving
from repro.serve.cluster import (
    _SERVICE_CYCLES_MEMO,
    ServingSimulation,
    estimate_service_cycles,
)
from repro.soc.os_model import OSConfig

MODEL = dict(model="squeezenet", input_hw=32)


def tenant(name="t", qps=150.0, n=6, **overrides):
    base = dict(name=name, arrival="poisson", rate_qps=qps, num_requests=n, **MODEL)
    base.update(overrides)
    return TenantSpec(**base)


class TestSingleTenantBitwiseParity:
    def test_replay_is_bitwise_identical(self):
        profile = TrafficProfile(tenants=(tenant("a", slo_ms=15.0),), num_tiles=1, seed=0)
        base = simulate_serving(profile, replay=False)
        fast = simulate_serving(profile, replay=True)
        assert fast.replayed > 0, "no request ever replayed"
        assert fast.records == base.records
        assert fast.report.overall.summary() == base.report.overall.summary()
        assert fast.makespan_cycles == base.makespan_cycles
        assert fast.l2_miss_rate == base.l2_miss_rate
        assert fast.dram_bytes == base.dram_bytes

    def test_replay_is_deterministic(self):
        profile = TrafficProfile(tenants=(tenant("a"),), num_tiles=1, seed=3)
        first = simulate_serving(profile)
        second = simulate_serving(profile)
        assert first.records == second.records
        assert first.replayed == second.replayed


class TestContendedTolerance:
    def test_two_tenant_metrics_within_tolerance(self):
        profile = TrafficProfile(
            tenants=(
                tenant("a", slo_ms=15.0, pin_tile=0),
                tenant("b", slo_ms=15.0, pin_tile=1),
            ),
            num_tiles=2,
            seed=0,
        )
        base = simulate_serving(profile, replay=False)
        fast = simulate_serving(profile, replay=True)
        assert fast.replayed > 0
        assert fast.completed == base.completed
        assert abs(fast.makespan_cycles / base.makespan_cycles - 1) < 0.05
        for name in ("a", "b"):
            tb = base.report.tenant(name)
            tf = fast.report.tenant(name)
            assert abs(tf.mean_ms / tb.mean_ms - 1) < 0.10, f"{name}: mean drifted"
            assert abs(tf.p99_ms / tb.p99_ms - 1) < 0.15, f"{name}: p99 drifted"

    def test_sandbox_traces_keep_live_requester_keys(self):
        """Sandbox-recorded traces must book per-requester counters under
        the live accelerator names — never phantom '*.sandbox' keys."""
        profile = TrafficProfile(
            tenants=(tenant("a", pin_tile=0), tenant("b", pin_tile=1)),
            num_tiles=2,
            seed=0,
        )
        sim = ServingSimulation(profile, replay=True)
        result = sim.run()
        assert result.replayed > 0
        l2_keys = sim.soc.mem.l2.stats.snapshot()
        bus_keys = sim.soc.mem.bus.stats.snapshot()
        assert not any("sandbox" in key for key in l2_keys)
        assert not any("sandbox" in key for key in bus_keys)
        # Replayed traffic keeps accruing under each tile's own identity.
        for name in ("gemmini0", "gemmini1"):
            assert l2_keys.get(f"hits_{name}", 0) + l2_keys.get(f"misses_{name}", 0) > 0

    def test_same_tile_model_alternation_stays_within_tolerance(self):
        """Two models alternating on ONE tile never share the steady state a
        trace assumes; such replays must re-resolve against live state and
        stay within the contended tolerance."""
        profile = TrafficProfile(
            tenants=(
                tenant("small", n=8),
                tenant("big", n=8, input_hw=64),
            ),
            num_tiles=1,
            seed=0,
        )
        base = simulate_serving(profile, replay=False)
        fast = simulate_serving(profile, replay=True)
        assert fast.completed == base.completed
        assert abs(fast.makespan_cycles / base.makespan_cycles - 1) < 0.05
        for name in ("small", "big"):
            tb = base.report.tenant(name)
            tf = fast.report.tenant(name)
            assert abs(tf.mean_ms / tb.mean_ms - 1) < 0.10, f"{name}: mean drifted"

    def test_contended_replay_still_books_shared_resources(self):
        """Replay must keep pressuring the shared L2/DRAM, or the other
        tile's contention vanishes — DRAM traffic stays comparable."""
        profile = TrafficProfile(
            tenants=(tenant("a", pin_tile=0), tenant("b", pin_tile=1)),
            num_tiles=2,
            seed=0,
        )
        base = simulate_serving(profile, replay=False)
        fast = simulate_serving(profile, replay=True)
        assert fast.dram_bytes > 0
        assert abs(fast.dram_bytes / base.dram_bytes - 1) < 0.10


class TestReplayGating:
    def test_no_replay_forces_generator_path(self):
        profile = TrafficProfile(tenants=(tenant("a"),), num_tiles=1, seed=0)
        result = simulate_serving(profile, replay=False)
        assert result.replayed == 0

    def test_os_model_disables_replay(self):
        """The OS time-slice model is absolute-time dependent; replay must
        not engage."""
        profile = TrafficProfile(tenants=(tenant("a", n=4),), num_tiles=1, seed=0)
        sim = ServingSimulation(profile, os=OSConfig(enabled=True))
        assert not sim.replay
        result = sim.run()
        assert result.replayed == 0

    def test_replay_flag_surfaces_in_result(self):
        profile = TrafficProfile(tenants=(tenant("a"),), num_tiles=1, seed=0)
        result = simulate_serving(profile, replay=True)
        # 6 requests: cold run, two convergence recordings, three replays.
        assert result.replayed == 3


class TestServiceCycleMemo:
    def test_estimate_is_memoized_per_workload_and_config(self):
        config = default_config()
        spec = tenant("memo-a")
        key = (spec.model, spec.input_hw, spec.seq, config)
        _SERVICE_CYCLES_MEMO.pop(key, None)
        first = estimate_service_cycles(spec, config)
        assert key in _SERVICE_CYCLES_MEMO
        # A different tenant with the same workload hits the same entry.
        other = replace(spec, name="memo-b", rate_qps=1.0)
        assert estimate_service_cycles(other, config) == first

    def test_memo_entries_are_poisoned_free(self):
        """Cache keys include the config: a different design point must not
        reuse another's estimate."""
        spec = tenant("memo-c")
        small = default_config()
        big = replace(small, mesh_rows=32, mesh_cols=32)
        assert estimate_service_cycles(spec, small) != estimate_service_cycles(spec, big)
