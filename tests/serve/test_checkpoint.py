"""Checkpoint/resume: a killed serving run must resume bitwise.

The event engine parks all tile actors at the first quiescent point
(nothing in flight) after every ``checkpoint_every`` completions and
pickles the whole simulation.  ``run(stop_after_checkpoints=N)`` is the
simulated kill: it halts after writing N checkpoints, so everything the
resumed run sees comes from the pickle alone — exactly what a
SIGKILL-and-restart exercises.
"""

import pickle

import pytest

from repro.obs.metrics import MetricStream
from repro.serve import (
    ServingSimulation,
    TenantSpec,
    TrafficProfile,
    load_checkpoint,
    save_checkpoint,
)
from repro.serve.checkpoint import CHECKPOINT_SCHEMA

MODEL = dict(model="squeezenet", input_hw=32)


def study_profile(seed=7):
    return TrafficProfile(
        tenants=(
            TenantSpec(
                name="web", arrival="poisson", rate_qps=300.0,
                num_requests=14, slo_ms=5.0, **MODEL,
            ),
            TenantSpec(
                name="batchy", arrival="closed", num_requests=10,
                concurrency=2, think_ms=0.5, **MODEL,
            ),
        ),
        num_tiles=2,
        scheduler="fcfs",
        seed=seed,
    )


def assert_results_equal(resumed, full):
    assert resumed.records == full.records
    assert resumed.report.overall.summary() == full.report.overall.summary()
    assert resumed.issued == full.issued
    assert resumed.dropped == full.dropped
    assert resumed.makespan_cycles == full.makespan_cycles
    assert resumed.l2_miss_rate == full.l2_miss_rate
    assert resumed.dram_bytes == full.dram_bytes


class TestKillAndResume:
    def test_resumed_run_is_bitwise_identical(self, tmp_path):
        path = tmp_path / "serve.ckpt"
        profile = study_profile()
        halted = ServingSimulation(
            profile, checkpoint_every=6, checkpoint_path=path
        ).run(stop_after_checkpoints=1)
        assert halted is None  # the run stopped at the barrier
        assert path.exists()

        full = ServingSimulation(profile).run()
        resumed_sim = load_checkpoint(path)
        result = resumed_sim.run()
        assert result is not None
        assert result.checkpoints >= 1
        assert_results_equal(result, full)

    def test_resume_from_a_later_checkpoint(self, tmp_path):
        # The file is overwritten at each barrier; resuming from the
        # second checkpoint replays a shorter tail but the same schedule.
        path = tmp_path / "serve.ckpt"
        profile = study_profile()
        halted = ServingSimulation(
            profile, checkpoint_every=2, checkpoint_path=path
        ).run(stop_after_checkpoints=2)
        assert halted is None
        full = ServingSimulation(profile).run()
        assert_results_equal(load_checkpoint(path).run(), full)

    def test_park_without_pickle_is_transparent(self):
        # The quiescent barrier itself (tear down generator frames, park,
        # rebuild the event loop) must not perturb timing even when no
        # checkpoint file is written.
        profile = study_profile()
        parked = ServingSimulation(profile, checkpoint_every=3).run()
        full = ServingSimulation(profile).run()
        assert_results_equal(parked, full)

    def test_saturated_run_checkpoints_at_first_drain(self, tmp_path):
        # Under saturating load the quiescent barrier may never trigger
        # mid-run; the run must then simply complete (checkpointing is
        # best-effort, correctness is not contingent on a drain showing up).
        path = tmp_path / "serve.ckpt"
        profile = study_profile(seed=11)
        result = ServingSimulation(
            profile, checkpoint_every=5, checkpoint_path=path
        ).run(stop_after_checkpoints=1)
        if result is None:  # a barrier did fire: resume must continue
            result = load_checkpoint(path).run()
        assert result.completed == result.issued == 24
        assert_results_equal(result, ServingSimulation(profile).run())


class TestCheckpointFiles:
    def test_save_requires_quiescence(self, tmp_path):
        sim = ServingSimulation(study_profile())
        sim._start()
        # Prime one actor so a macro-op stream is live, then refuse.
        actor = sim._actors[0]
        actor.step()
        if actor.stream is not None:
            with pytest.raises(RuntimeError, match="stream is live"):
                save_checkpoint(sim, tmp_path / "bad.ckpt")

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "wrong.ckpt"
        with open(path, "wb") as fh:
            pickle.dump({"schema": CHECKPOINT_SCHEMA + 1, "sim": None}, fh)
        with pytest.raises(ValueError, match="schema"):
            load_checkpoint(path)

    def test_garbage_payload_rejected(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        with open(path, "wb") as fh:
            pickle.dump({"schema": CHECKPOINT_SCHEMA, "sim": 42}, fh)
        with pytest.raises(ValueError):
            load_checkpoint(path)

    def test_checkpointing_requires_event_engine(self):
        with pytest.raises(ValueError, match="event"):
            ServingSimulation(study_profile(), engine="lockstep", checkpoint_every=4)

    def test_metric_stream_sheds_live_consumer_on_pickle(self, tmp_path):
        seen = []
        metrics = MetricStream(every=4, on_snapshot=seen.append)
        path = tmp_path / "serve.ckpt"
        profile = study_profile()
        ServingSimulation(
            profile, metrics=metrics, checkpoint_every=6, checkpoint_path=path
        ).run(stop_after_checkpoints=1)
        sim = load_checkpoint(path)
        assert sim.metrics.on_snapshot is None  # closure did not survive
        assert sim.run() is not None
