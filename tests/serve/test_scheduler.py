"""Unit tests for the dispatch policies."""

import pytest

from repro.serve.request import Request
from repro.serve.scheduler import (
    SCHEDULERS,
    BatchScheduler,
    FCFSScheduler,
    PriorityScheduler,
    RoundRobinScheduler,
    SJFScheduler,
    make_scheduler,
)

KEY = ("squeezenet", 64, 32)


def req(tenant="t", index=0, arrival=0.0, priority=0, cost=0.0, pin=None, model=KEY):
    return Request(
        tenant=tenant,
        index=index,
        model_key=model,
        arrival=arrival,
        priority=priority,
        cost_hint=cost,
        pin_tile=pin,
    )


def drain(sched, tile=0, now=1e12):
    out = []
    while True:
        picked = sched.pick(tile, now)
        if picked is None:
            return out
        out.append(picked)


class TestFCFS:
    def test_orders_by_arrival(self):
        s = FCFSScheduler()
        for r in (req(index=0, arrival=30.0), req(index=1, arrival=10.0), req(index=2, arrival=20.0)):
            s.add(r)
        assert [r.index for r in drain(s)] == [1, 2, 0]

    def test_tie_breaks_by_tenant_then_index(self):
        s = FCFSScheduler()
        for r in (req(tenant="b", index=0), req(tenant="a", index=1), req(tenant="a", index=0)):
            s.add(r)
        assert [(r.tenant, r.index) for r in drain(s)] == [("a", 0), ("a", 1), ("b", 0)]

    def test_empty_pick_returns_none(self):
        assert FCFSScheduler().pick(0, 0.0) is None


class TestPriority:
    def test_higher_priority_first(self):
        s = PriorityScheduler()
        s.add(req(tenant="lo", arrival=0.0, priority=0))
        s.add(req(tenant="hi", arrival=50.0, priority=3))
        assert drain(s)[0].tenant == "hi"


class TestSJF:
    def test_shortest_estimate_first(self):
        s = SJFScheduler()
        s.add(req(tenant="big", arrival=0.0, cost=9e6))
        s.add(req(tenant="small", arrival=5.0, cost=1e6))
        assert [r.tenant for r in drain(s)] == ["small", "big"]


class TestDrainAccounting:
    def test_drain_empties_the_queue(self):
        s = FCFSScheduler()
        for i in range(3):
            s.add(req(index=i, arrival=float(i)))
        drained = s.drain()
        assert [r.index for r in drained] == [0, 1, 2]
        assert len(s) == 0 and s.pending == ()
        assert s.drain() == []

    def test_open_batch_counts_in_len_and_pending(self):
        """Regression: requests moved from the queue into an open batch
        vanished from __len__/pending the moment the batch formed."""
        s = BatchScheduler(batch_size=2, window_cycles=100.0)
        s.add(req(index=0, arrival=0.0))
        s.add(req(index=1, arrival=5.0))
        assert len(s) == 2
        first = s.pick(0, now=5.0)  # batch forms; first member dispatched
        assert first.index == 0
        # The second member is staged in the open batch: still pending work.
        assert len(s) == 1
        assert [r.index for r in s.pending] == [1]

    def test_drain_reaches_open_batches(self):
        """Regression: a batch opened on a tile that never picks again must
        surface through drain() so the engine can count it as dropped."""
        s = BatchScheduler(batch_size=3, window_cycles=0.0)
        for i in range(3):
            s.add(req(index=i, arrival=float(i)))
        s.add(req(index=9, arrival=50.0, model=("bert", 64, 16)))
        assert s.pick(0, now=60.0).index == 0  # opens the 3-batch on tile 0
        drained = s.drain()
        assert sorted(r.index for r in drained) == [1, 2, 9]
        assert len(s) == 0 and s.pending == ()


class TestRoundRobin:
    def test_rotates_between_tenants(self):
        s = RoundRobinScheduler()
        for i in range(3):
            s.add(req(tenant="a", index=i, arrival=float(i)))
        for i in range(3):
            s.add(req(tenant="b", index=i, arrival=float(i) + 0.5))
        order = [(r.tenant, r.index) for r in drain(s)]
        assert order == [("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2)]

    def test_single_tenant_degenerates_to_fcfs(self):
        s = RoundRobinScheduler()
        for i in (2, 0, 1):
            s.add(req(index=i, arrival=float(i)))
        assert [r.index for r in drain(s)] == [0, 1, 2]

    def test_drained_tenant_leaves_the_rotation(self):
        """Regression: departed tenants stayed in the rotation forever, so
        long multi-phase traces scanned dead tenants on every pick."""
        s = RoundRobinScheduler()
        s.add(req(tenant="once", index=0, arrival=0.0))
        for i in range(2):
            s.add(req(tenant="steady", index=i, arrival=float(i) + 0.5))
        assert s.pick(0, 10.0).tenant == "once"
        assert s._rotation == ["steady"]  # "once" pruned, order preserved
        assert s.pick(0, 10.0).tenant == "steady"

    def test_tenant_that_drains_and_rearrives_resumes_fairly(self):
        """A drained tenant re-enters at the back of the rotation — the
        exact position a just-served tenant would hold — so fairness and
        determinism survive multi-phase traffic."""
        s = RoundRobinScheduler()
        s.add(req(tenant="a", index=0, arrival=0.0))
        for i in range(3):
            s.add(req(tenant="b", index=i, arrival=float(i)))
        assert [r.tenant for r in (s.pick(0, 99.0), s.pick(0, 99.0))] == ["a", "b"]
        # Phase two: "a" re-arrives after fully draining; it queues behind
        # the just-served "b" and the alternation resumes.
        s.add(req(tenant="a", index=1, arrival=50.0))
        order = [(r.tenant, r.index) for r in drain(s)]
        assert order == [("b", 1), ("a", 1), ("b", 2)]

    def test_pinned_requests_keep_their_tenant_in_rotation(self):
        """A tenant whose remaining work is pinned elsewhere is not
        'departed' — it must keep its rotation slot."""
        s = RoundRobinScheduler()
        s.add(req(tenant="a", index=0, arrival=0.0))
        s.add(req(tenant="a", index=1, arrival=1.0, pin=1))
        assert s.pick(0, 10.0).index == 0
        assert s._rotation == ["a"]
        assert s.pick(1, 10.0).index == 1


class TestPinning:
    def test_pinned_request_only_runs_on_its_tile(self):
        s = FCFSScheduler()
        s.add(req(tenant="pinned", pin=1))
        assert s.pick(0, 0.0) is None
        assert s.pick(1, 0.0).tenant == "pinned"

    def test_unpinned_requests_run_anywhere(self):
        s = FCFSScheduler()
        s.add(req())
        assert s.pick(3, 0.0) is not None


class TestBatch:
    def test_holds_until_batch_fills(self):
        s = BatchScheduler(batch_size=2, window_cycles=100.0)
        s.add(req(index=0, arrival=0.0))
        assert s.pick(0, now=10.0) is None  # one request, window open
        s.add(req(index=1, arrival=20.0))
        assert s.pick(0, now=20.0).index == 0  # batch full: release
        assert s.pick(0, now=20.0).index == 1  # rest of the batch drains
        assert s.pick(0, now=20.0) is None

    def test_window_expiry_releases_partial_batch(self):
        s = BatchScheduler(batch_size=4, window_cycles=100.0)
        s.add(req(index=0, arrival=0.0))
        assert s.pick(0, now=99.0) is None
        assert s.pick(0, now=100.0).index == 0

    def test_wakeup_reports_window_expiry(self):
        s = BatchScheduler(batch_size=4, window_cycles=100.0)
        assert s.wakeup(0, 0.0) is None
        s.add(req(index=0, arrival=40.0))
        assert s.wakeup(0, 50.0) == pytest.approx(140.0)
        # Expired window: pick() would succeed, so there is nothing to
        # wake up for — returning "now" would make idle tiles busy-spin.
        assert s.wakeup(0, 200.0) is None

    def test_wakeup_ignores_requests_pinned_to_other_tiles(self):
        """A tile must not be woken (cycle by cycle!) for work it can
        never pick — the engine falls back to its coarse idle quantum."""
        s = BatchScheduler(batch_size=4, window_cycles=100.0)
        s.add(req(index=0, arrival=0.0, pin=0))
        assert s.wakeup(1, 500.0) is None
        assert s.wakeup(0, 50.0) == pytest.approx(100.0)

    def test_batches_group_same_model_only(self):
        other = ("bert", 64, 16)
        s = BatchScheduler(batch_size=2, window_cycles=1e9)
        s.add(req(index=0, arrival=0.0, model=KEY))
        s.add(req(index=1, arrival=1.0, model=other))
        s.add(req(index=2, arrival=2.0, model=KEY))
        first = s.pick(0, now=2.0)
        second = s.pick(0, now=2.0)
        assert (first.index, second.index) == (0, 2)  # same-model batch

    def test_batch_validation(self):
        with pytest.raises(ValueError):
            BatchScheduler(batch_size=0)


class TestFactory:
    def test_all_registered(self):
        assert set(SCHEDULERS) == {"fcfs", "priority", "sjf", "rr", "batch"}
        for name in SCHEDULERS:
            assert make_scheduler(name).name == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("lifo")

    def test_options_reach_constructor(self):
        sched = make_scheduler("batch", batch_size=8, window_cycles=5.0)
        assert sched.batch_size == 8 and sched.window_cycles == 5.0
