"""Integration tests for the serving cluster engine.

Uses squeezenet at 32px — the cheapest zoo workload — so each simulation
stays well under a second while still exercising the full SoC stack
(compiler, runtime, DMA, shared L2/DRAM, TLB).
"""

from dataclasses import replace

import pytest

from repro.serve import (
    ServingSimulation,
    TenantSpec,
    TrafficProfile,
    simulate_serving,
)

MODEL = dict(model="squeezenet", input_hw=32)


def tenant(name="t", qps=150.0, n=4, **overrides):
    base = dict(name=name, arrival="poisson", rate_qps=qps, num_requests=n, **MODEL)
    base.update(overrides)
    return TenantSpec(**base)


@pytest.fixture(scope="module")
def two_tenant_result():
    profile = TrafficProfile(
        tenants=(tenant("a", slo_ms=3.0), tenant("b", slo_ms=3.0)),
        num_tiles=2,
        scheduler="fcfs",
        seed=0,
    )
    return profile, simulate_serving(profile)


class TestBasicExecution:
    def test_every_request_served(self, two_tenant_result):
        profile, result = two_tenant_result
        assert result.completed == profile.total_requests
        assert result.dropped == {}
        assert result.issued == profile.total_requests

    def test_records_are_causal(self, two_tenant_result):
        __, result = two_tenant_result
        for record in result.records:
            assert record.start >= record.arrival
            assert record.finish > record.start
            assert 0 <= record.tile < 2

    def test_indices_are_dense_per_tenant(self, two_tenant_result):
        __, result = two_tenant_result
        for name in ("a", "b"):
            indices = sorted(r.index for r in result.records if r.tenant == name)
            assert indices == list(range(4))

    def test_report_totals_match_records(self, two_tenant_result):
        __, result = two_tenant_result
        report = result.report
        assert report.overall.completed == len(result.records)
        assert report.overall.p99_ms > 0
        assert report.overall.throughput_qps > 0
        assert 0 < report.fairness <= 1.0

    def test_memory_system_saw_traffic(self, two_tenant_result):
        __, result = two_tenant_result
        assert result.dram_bytes > 0
        assert 0 <= result.l2_miss_rate <= 1


class TestDeterminism:
    def test_identical_request_logs_and_quantiles(self, two_tenant_result):
        """The acceptance bar: same seed, same logs, same p50/p95/p99."""
        profile, first = two_tenant_result
        second = simulate_serving(profile)
        assert first.records == second.records
        assert first.report.overall.summary() == second.report.overall.summary()
        for a, b in zip(first.report.tenants, second.report.tenants):
            assert a.summary() == b.summary()

    def test_seed_changes_arrivals(self, two_tenant_result):
        profile, first = two_tenant_result
        other = simulate_serving(profile.with_seed(1))
        assert [r.arrival for r in first.records] != [r.arrival for r in other.records]


class TestContention:
    def test_colocated_p99_strictly_above_isolation(self):
        """Pinned tenants never share a queue, so the co-located p99 rise
        is shared-L2/DRAM/PTW contention — the Fig. 9c mechanism."""
        a = tenant("a", qps=100.0, n=5, pin_tile=0)
        b = tenant("b", qps=100.0, n=5, pin_tile=1)
        iso_a = simulate_serving(
            TrafficProfile(tenants=(replace(a, pin_tile=0),), num_tiles=1, seed=0)
        )
        iso_b = simulate_serving(
            TrafficProfile(tenants=(replace(b, pin_tile=0),), num_tiles=1, seed=0)
        )
        co = simulate_serving(TrafficProfile(tenants=(a, b), num_tiles=2, seed=0))
        # Same seed + per-tenant RNG: the arrival streams are identical.
        assert [r.arrival for r in iso_a.records] == sorted(
            r.arrival for r in co.records if r.tenant == "a"
        )
        assert co.report.tenant("a").p99_ms > iso_a.report.tenant("a").p99_ms
        assert co.report.tenant("b").p99_ms > iso_b.report.tenant("b").p99_ms


class TestSchedulers:
    def test_priority_tenant_sees_lower_queueing(self):
        """On one tile under overload, the high-priority tenant's mean
        queueing delay must beat the low-priority tenant's."""
        hi = tenant("hi", qps=400.0, n=4, priority=5)
        lo = tenant("lo", qps=400.0, n=4, priority=0)
        result = simulate_serving(
            TrafficProfile(tenants=(hi, lo), num_tiles=1, scheduler="priority", seed=2)
        )
        assert result.completed == 8
        assert (
            result.report.tenant("hi").queue_mean_ms
            < result.report.tenant("lo").queue_mean_ms
        )

    def test_sjf_uses_analytic_cost_hints(self):
        sim = ServingSimulation(
            TrafficProfile(tenants=(tenant(),), num_tiles=1, scheduler="sjf", seed=0)
        )
        hint = sim._cost_hint(tenant())
        assert hint > 0

    @pytest.mark.parametrize("policy", ["fcfs", "priority", "sjf", "rr", "batch"])
    def test_every_policy_serves_all(self, policy):
        profile = TrafficProfile(
            tenants=(tenant("a", n=3), tenant("b", n=3)),
            num_tiles=2,
            scheduler=policy,
            seed=1,
        )
        result = simulate_serving(profile)
        assert result.completed == 6, f"{policy} dropped requests"


class TestClosedLoop:
    def test_closed_loop_serves_budget_sequentially(self):
        spec = tenant("cl", arrival="closed", n=4, concurrency=1, think_ms=0.5)
        result = simulate_serving(TrafficProfile(tenants=(spec,), num_tiles=1, seed=0))
        assert result.completed == 4
        records = sorted(result.records, key=lambda r: r.index)
        think_cycles = 0.5e6
        for prev, nxt in zip(records, records[1:]):
            # Each request is issued think_ms after the previous completion.
            assert nxt.arrival == pytest.approx(prev.finish + think_cycles)
            assert nxt.start >= nxt.arrival

    def test_closed_loop_across_tiles(self):
        spec = tenant("cl", arrival="closed", n=6, concurrency=2)
        result = simulate_serving(TrafficProfile(tenants=(spec,), num_tiles=2, seed=0))
        assert result.completed == 6
        assert {r.tile for r in result.records} == {0, 1}


class TestHorizon:
    def test_horizon_drops_late_requests(self):
        spec = tenant("t", qps=2000.0, n=12)
        result = simulate_serving(
            TrafficProfile(tenants=(spec,), num_tiles=1, seed=0, horizon_ms=1.0)
        )
        assert result.completed < 12
        assert result.dropped.get("t", 0) == 12 - result.completed
        assert result.report.tenant("t").dropped == result.dropped["t"]
        # Dropped requests count against the SLO violation rate.
        assert result.report.tenant("t").slo_violation_rate > 0


    def test_stranded_open_batch_counts_as_dropped(self):
        """Regression: requests staged in an open batch on a tile that
        stops picking (horizon cut) must drain into the dropped tally
        instead of silently vanishing inside the scheduler."""
        spec = TenantSpec(
            name="t",
            model="squeezenet",
            input_hw=32,
            arrival="trace",
            trace_ms=(0.0, 0.0, 0.0, 0.0),
            slo_ms=1.0,
        )
        result = simulate_serving(
            TrafficProfile(
                tenants=(spec,),
                num_tiles=1,
                scheduler="batch",
                batch_size=4,
                batch_window_ms=0.0,
                seed=0,
                horizon_ms=0.01,
            )
        )
        # The tile opens the 4-batch at t=0, serves its first member, then
        # hits the horizon with three requests still staged in the batch.
        assert result.completed == 1
        assert result.dropped == {"t": 3}
        assert result.completed + sum(result.dropped.values()) == result.issued
        # Drops surface in the SLO accounting too.
        assert result.report.tenant("t").dropped == 3

    def test_horizon_cut_closed_loop_accounts_consistently(self):
        """A horizon-cut closed loop stops issuing: `issued` must count
        actually-generated requests so issued - completed == dropped."""
        spec = tenant("c", arrival="closed", n=10, concurrency=1)
        result = simulate_serving(
            TrafficProfile(tenants=(spec,), num_tiles=1, seed=0, horizon_ms=0.2)
        )
        assert result.issued < 10
        assert result.issued - result.completed == sum(result.dropped.values())


class TestBatchWithPinnedTenants:
    def test_no_busy_spin_on_ineligible_tiles(self):
        """Batch + pinning: tile 1 has no pickable work, so its idle
        stepping must use the coarse idle quantum, not 1-cycle ticks."""
        profile = TrafficProfile(
            tenants=(tenant("p", n=3, pin_tile=0),),
            num_tiles=2,
            scheduler="batch",
            batch_size=1,
            seed=0,
        )
        sim = ServingSimulation(profile)
        calls = 0
        orig = sim.scheduler.wakeup

        def counting(tile_index, now):
            nonlocal calls
            calls += 1
            return orig(tile_index, now)

        sim.scheduler.wakeup = counting
        result = sim.run()
        assert result.completed == 3
        # Idle stepping is bounded by makespan / idle_quantum plus a few
        # arrival wakeups; a 1-cycle busy-spin would consult the scheduler
        # once per simulated cycle (~10^7 here).
        assert calls < 100 * (result.makespan_cycles / sim.idle_quantum + 10)


class TestBatchProfileOptions:
    def test_profile_batch_knobs_reach_the_scheduler(self):
        profile = TrafficProfile(
            tenants=(tenant(),),
            num_tiles=1,
            scheduler="batch",
            batch_size=2,
            batch_window_ms=0.5,
        )
        sim = ServingSimulation(profile)
        assert sim.scheduler.batch_size == 2
        # ms window converts at the serving SoC's own clock.
        assert sim.scheduler.window_cycles == pytest.approx(0.5 * sim.clock_ghz * 1e6)


class TestTraceReplay:
    def test_trace_arrivals_are_replayed_exactly(self):
        spec = TenantSpec(
            name="replay",
            model="squeezenet",
            input_hw=32,
            arrival="trace",
            trace_ms=(0.0, 0.25, 0.5),
        )
        result = simulate_serving(TrafficProfile(tenants=(spec,), num_tiles=1, seed=9))
        arrivals = sorted(r.arrival for r in result.records)
        assert arrivals == [0.0, 0.25e6, 0.5e6]
