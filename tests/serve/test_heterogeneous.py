"""Heterogeneous (component-built) cluster serving guarantees.

Three contracts layered on top of the homogeneous serving tests:

* **Cost-aware dispatch** — SJF consults each tile's *own* analytic cost
  through the bound per-tile oracle, so on a big/little SoC large-layer
  requests deterministically land on the big tile when both are free.
* **Replay on heterogeneous clusters** — macro-op trace slots are keyed by
  ``(tile config hash, model)``; same-config tiles group under one slot
  but replay strictly per physical tile (traces embed per-asid address
  streams), and pinned-tenant parity tolerances match the homogeneous
  contended contract.
* **Legacy equivalence** — a homogeneous component design serves bitwise
  identically to the same cluster built from the old kwargs.
"""

from repro.core.config import default_config
from repro.serve import TenantSpec, TrafficProfile, simulate_serving
from repro.serve.cluster import ServingSimulation, estimate_service_cycles
from repro.serve.request import Request
from repro.serve.scheduler import SJFScheduler
from repro.soc import CacheComponent, DRAMComponent, SoCDesign, TileComponent

MODEL = dict(model="squeezenet", input_hw=32)

BIG = default_config().with_geometry(32, 1)
LITTLE = default_config().with_geometry(8, 1)


def tenant(name="t", qps=150.0, n=6, **overrides):
    base = dict(name=name, arrival="poisson", rate_qps=qps, num_requests=n, **MODEL)
    base.update(overrides)
    return TenantSpec(**base)


def big_little(little_count: int = 1) -> SoCDesign:
    return SoCDesign(
        components=(
            TileComponent(gemmini=BIG, name="big"),
            TileComponent(gemmini=LITTLE, count=little_count, name="little"),
            CacheComponent(),
            DRAMComponent(),
        ),
        name="big-little",
    )


def request(index, tenant_name, cost=100.0, arrival=0.0):
    return Request(
        index=index,
        tenant=tenant_name,
        model_key=("squeezenet", 32, 32),
        arrival=arrival,
        cost_hint=cost,
    )


class TestPerTileCostOracle:
    def test_unbound_scheduler_uses_global_hint(self):
        sched = SJFScheduler()
        assert sched.cost_on(request(0, "a", cost=7.0), tile_index=1) == 7.0

    def test_bound_oracle_reorders_per_tile(self):
        """A job that is short on the big tile can be long on the little
        one — the pick order must flip with the asking tile."""
        sched = SJFScheduler()
        costs = {  # (tenant, tile) -> cycles
            ("fat", 0): 10.0, ("fat", 1): 1000.0,
            ("thin", 0): 20.0, ("thin", 1): 30.0,
        }
        sched.bind_tile_costs(lambda r, tile: costs[(r.tenant, tile)])
        a, b = request(0, "fat"), request(1, "thin")
        sched.add(a)
        sched.add(b)
        assert sched.pick(0, now=0.0) is a  # big tile: fat job is cheapest
        sched.add(a)
        assert sched.pick(1, now=0.0) is b  # little tile: fat job is huge

    def test_cluster_binds_estimates_against_each_tiles_config(self):
        sim = ServingSimulation(
            TrafficProfile(tenants=(tenant("a"),), num_tiles=2, scheduler="sjf", seed=0),
            design=big_little(),
        )
        spec = sim.profile.tenants[0]
        req = request(0, "a")
        assert sim._tile_cost(req, 0) == estimate_service_cycles(spec, BIG)
        assert sim._tile_cost(req, 1) == estimate_service_cycles(spec, LITTLE)
        assert sim._tile_cost(req, 0) < sim._tile_cost(req, 1)


class TestBigLittleRouting:
    def test_sjf_routes_heavy_requests_to_big_tile(self):
        """With every tile idle at arrival, SJF serves each large-layer
        request on the tile where it is cheapest: the big one."""
        profile = TrafficProfile(
            tenants=(tenant("hvy", model="resnet50", qps=2.0, n=4),),
            num_tiles=2,
            scheduler="sjf",
            seed=0,
        )
        result = simulate_serving(profile, design=big_little())
        assert result.completed == 4
        assert {r.tile for r in result.records} == {0}

    def test_routing_is_deterministic(self):
        profile = TrafficProfile(
            tenants=(tenant("hvy", qps=400.0, n=5), tenant("lt", qps=400.0, n=5)),
            num_tiles=3,
            scheduler="sjf",
            seed=7,
        )
        first = simulate_serving(profile, design=big_little(little_count=2))
        second = simulate_serving(profile, design=big_little(little_count=2))
        assert first.records == second.records
        assert first.replayed == second.replayed


class TestHeterogeneousReplay:
    def test_pinned_parity_within_contended_tolerance(self):
        """test_replay.py's contended contract, on a big/little cluster:
        pinned tenants keep placement fixed, so replay drift is purely
        timing and must stay within the documented tolerances."""
        profile = TrafficProfile(
            tenants=(
                tenant("a", slo_ms=15.0, pin_tile=0),
                tenant("b", slo_ms=15.0, pin_tile=1),
            ),
            num_tiles=2,
            seed=0,
        )
        design = big_little()
        base = simulate_serving(profile, design=design, replay=False)
        fast = simulate_serving(profile, design=design, replay=True)
        assert fast.replayed > 0
        assert fast.completed == base.completed
        assert abs(fast.makespan_cycles / base.makespan_cycles - 1) < 0.05
        for name in ("a", "b"):
            tb = base.report.tenant(name)
            tf = fast.report.tenant(name)
            assert abs(tf.mean_ms / tb.mean_ms - 1) < 0.10, f"{name}: mean drifted"
            assert abs(tf.p99_ms / tb.p99_ms - 1) < 0.15, f"{name}: p99 drifted"

    def test_same_config_tiles_replay_per_physical_tile(self):
        """Two little tiles share a config hash (one trace-slot group) but
        traces embed per-asid address streams — replayed traffic must keep
        booking under each tile's own requester identity."""
        profile = TrafficProfile(
            tenants=(tenant("a", pin_tile=1, n=6), tenant("b", pin_tile=2, n=6)),
            num_tiles=3,
            seed=0,
        )
        sim = ServingSimulation(profile, design=big_little(little_count=2))
        assert sim._tile_hashes[1] == sim._tile_hashes[2]
        assert sim._tile_hashes[0] != sim._tile_hashes[1]
        result = sim.run()
        assert result.replayed > 0
        l2_keys = sim.soc.mem.l2.stats.snapshot()
        assert not any("sandbox" in key for key in l2_keys)
        for name in ("gemmini1", "gemmini2"):
            assert l2_keys.get(f"hits_{name}", 0) + l2_keys.get(f"misses_{name}", 0) > 0

    def test_homogeneous_design_matches_legacy_kwargs_bitwise(self):
        """The component path is the old path for homogeneous clusters:
        same requests, same counters, bit for bit."""
        profile = TrafficProfile(tenants=(tenant("a", slo_ms=15.0),), num_tiles=2, seed=0)
        design = SoCDesign.homogeneous(gemmini=default_config(), num_tiles=2)
        via_design = simulate_serving(profile, design=design)
        via_kwargs = simulate_serving(profile, gemmini=default_config())
        assert via_design.records == via_kwargs.records
        assert via_design.replayed == via_kwargs.replayed
        assert via_design.makespan_cycles == via_kwargs.makespan_cycles
        assert via_design.dram_bytes == via_kwargs.dram_bytes
