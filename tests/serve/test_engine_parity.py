"""Parity gate: the event-queue engine must reproduce lockstep bitwise.

The event engine admits requests lazily from streaming arrival sources
and retires them online; the lockstep baseline materialises every
arrival up front and round-robins generator frames.  Their request logs,
report summaries, and shared-memory counters must nonetheless be
**bitwise identical** — same floats, same tie-breaks, same contention.

Profiles stay tiny (squeezenet at 32px, a handful of requests) so the
hypothesis sweep over random (profile, schedule, seed) points finishes
quickly; trace replay (on by default) keeps repeated macro-op streams
cheap.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import default_config
from repro.serve import TenantSpec, TrafficProfile, simulate_serving

MODEL = dict(model="squeezenet", input_hw=32)


def _assert_bitwise_equal(event, lockstep):
    assert event.records == lockstep.records
    assert event.report.overall.summary() == lockstep.report.overall.summary()
    for tenant in lockstep.report.tenants:
        assert event.report.tenant(tenant.tenant).summary() == tenant.summary()
    assert event.makespan_cycles == lockstep.makespan_cycles
    assert event.issued == lockstep.issued
    assert event.dropped == lockstep.dropped
    assert event.replayed == lockstep.replayed
    assert event.l2_miss_rate == lockstep.l2_miss_rate
    assert event.dram_bytes == lockstep.dram_bytes


def _both_engines(profile, **kwargs):
    return (
        simulate_serving(profile, engine="event", **kwargs),
        simulate_serving(profile, engine="lockstep", **kwargs),
    )


class TestTwoTenantStudyParity:
    """The headline acceptance: the two-tenant serving study, bitwise."""

    def test_contended_two_tenant_study(self):
        profile = TrafficProfile(
            tenants=(
                TenantSpec(
                    name="web", arrival="poisson", rate_qps=300.0,
                    num_requests=8, slo_ms=5.0, **MODEL,
                ),
                TenantSpec(
                    name="batchy", arrival="closed", num_requests=6,
                    concurrency=2, think_ms=0.5, **MODEL,
                ),
            ),
            num_tiles=2,
            scheduler="fcfs",
            seed=7,
        )
        event, lockstep = _both_engines(profile)
        assert event.completed == event.issued
        _assert_bitwise_equal(event, lockstep)

    def test_horizon_cut_drops_match(self):
        # A tight horizon forces drops; both engines must drop the same
        # requests (streamed sources account unpulled arrivals too).
        profile = TrafficProfile(
            tenants=(
                TenantSpec(
                    name="web", arrival="poisson", rate_qps=400.0,
                    num_requests=12, **MODEL,
                ),
            ),
            num_tiles=1,
            seed=3,
            horizon_ms=1.0,
        )
        event, lockstep = _both_engines(profile)
        assert sum(event.dropped.values()) > 0
        _assert_bitwise_equal(event, lockstep)


class TestPropertyParity:
    @settings(max_examples=3, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16 - 1),
        scheduler=st.sampled_from(["fcfs", "priority", "sjf", "rr"]),
        arrival=st.sampled_from(["poisson", "bursty", "closed"]),
        num_tiles=st.integers(min_value=1, max_value=2),
        requests=st.integers(min_value=2, max_value=4),
        dim=st.sampled_from([8, 16]),
    )
    def test_random_points_are_bitwise_identical(
        self, seed, scheduler, arrival, num_tiles, requests, dim
    ):
        kwargs = dict(name="t0", arrival=arrival, num_requests=requests, **MODEL)
        if arrival == "closed":
            kwargs.update(concurrency=2, think_ms=0.25)
        else:
            kwargs.update(rate_qps=250.0)
        if arrival == "bursty":
            kwargs.update(burst_on_ms=0.5, burst_off_ms=1.0)
        profile = TrafficProfile(
            tenants=(
                TenantSpec(**kwargs),
                TenantSpec(
                    name="t1", arrival="poisson", rate_qps=200.0,
                    num_requests=2, priority=1, **MODEL,
                ),
            ),
            num_tiles=num_tiles,
            scheduler=scheduler,
            seed=seed,
        )
        gemmini = default_config().with_geometry(dim, 1)
        _assert_bitwise_equal(*_both_engines(profile, gemmini=gemmini))


class TestMemoryBound:
    def test_peak_state_is_order_inflight_not_total(self):
        # A closed loop with concurrency 2 issues 20 requests but never
        # has more than ~concurrency pending or in flight: the measurable
        # O(in-flight) claim.  The lockstep engine primes the whole
        # pre-scheduled stream instead.
        profile = TrafficProfile(
            tenants=(
                TenantSpec(
                    name="loop", arrival="closed", num_requests=20,
                    concurrency=2, think_ms=0.1, **MODEL,
                ),
                TenantSpec(
                    name="web", arrival="poisson", rate_qps=100.0,
                    num_requests=8, **MODEL,
                ),
            ),
            num_tiles=2,
            seed=1,
        )
        event = simulate_serving(profile, engine="event")
        assert event.completed == event.issued == 28
        assert event.peak_inflight <= profile.num_tiles
        # Streaming admission holds one pre-scheduled arrival per tenant
        # plus follow-ups; far below the 28 issued requests.
        assert event.peak_pending <= 8
        assert event.peak_pending < event.issued // 3

    def test_stream_record_mode_drops_the_request_log(self):
        profile = TrafficProfile(
            tenants=(
                TenantSpec(
                    name="web", arrival="poisson", rate_qps=250.0,
                    num_requests=6, slo_ms=5.0, **MODEL,
                ),
            ),
            num_tiles=1,
            seed=5,
        )
        exact = simulate_serving(profile, record_mode="exact")
        stream = simulate_serving(profile, record_mode="stream")
        assert stream.records == []
        assert stream.completed == exact.completed == 6
        assert stream.issued == exact.issued
        # Counting stats are exact in both modes; quantiles come from the
        # P2 sketch and must land near the exact histogram's.
        s, e = stream.report.overall, exact.report.overall
        assert s.completed == e.completed
        assert s.mean_ms == e.mean_ms
        assert s.goodput_qps == e.goodput_qps
        assert abs(s.p99_ms - e.p99_ms) <= max(0.25 * e.p99_ms, 0.05)
