"""Unit tests for SLO metrics and serving exports (synthetic records)."""

import csv
import json

import pytest

from repro.serve.cluster import ServeResult
from repro.serve.export import (
    export_serve_csv,
    export_serve_json,
    serve_table,
    serve_to_dict,
)
from repro.serve.metrics import build_report, jain_fairness
from repro.serve.request import RequestRecord
from repro.serve.workload import TenantSpec, TrafficProfile


def record(tenant, index, arrival, start, finish, slo_cycles=None):
    return RequestRecord(
        tenant=tenant,
        index=index,
        model="squeezenet",
        tile=0,
        arrival=arrival,
        start=start,
        finish=finish,
        slo_cycles=slo_cycles,
    )


def tenants(**kw):
    a = TenantSpec(name="a", model="squeezenet", num_requests=2, slo_ms=1.0, **kw)
    b = TenantSpec(name="b", model="squeezenet", num_requests=2, **kw)
    return (a, b)


class TestJainFairness:
    def test_equal_allocations_are_fair(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog_is_max_unfair(self):
        assert jain_fairness([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0.0, 0.0]) == 1.0


class TestBuildReport:
    def make(self):
        # Tenant a: latencies 1e6 and 3e6 cycles (1 ms, 3 ms at 1 GHz) with
        # a 1 ms SLO -> one violation.  Tenant b: one request, no SLO.
        records = [
            record("a", 0, arrival=0.0, start=0.0, finish=1e6, slo_cycles=1e6),
            record("a", 1, arrival=1e6, start=2e6, finish=4e6, slo_cycles=1e6),
            record("b", 0, arrival=0.0, start=5e5, finish=2e6),
        ]
        return build_report(
            records, tenants(), clock_ghz=1.0, makespan_cycles=4e6, dropped={"b": 1}
        )

    def test_per_tenant_latency_quantiles(self):
        report = self.make()
        a = report.tenant("a")
        assert a.completed == 2
        assert a.p50_ms == pytest.approx(1.0)
        assert a.p99_ms == pytest.approx(3.0)
        assert a.mean_ms == pytest.approx(2.0)
        assert a.queue_mean_ms == pytest.approx(0.5)  # (0 + 1e6)/2 cycles
        assert a.service_mean_ms == pytest.approx(1.5)

    def test_slo_accounting(self):
        report = self.make()
        a = report.tenant("a")
        assert a.slo_met == 1
        assert a.slo_violation_rate == pytest.approx(0.5)
        # b has no SLO: completions count as met, but the drop still counts.
        b = report.tenant("b")
        assert b.slo_met == 1
        assert b.dropped == 1
        assert b.slo_violation_rate == pytest.approx(0.5)

    def test_rates_use_makespan(self):
        report = self.make()
        seconds = 4e6 / 1e9  # 4 ms
        assert report.overall.throughput_qps == pytest.approx(3 / seconds)
        assert report.overall.goodput_qps == pytest.approx(2 / seconds)

    def test_overall_is_merge_of_tenants(self):
        report = self.make()
        assert report.overall.completed == 3
        assert report.overall.latency.count == 3
        assert report.overall.p99_ms == pytest.approx(3.0)

    def test_unknown_tenant_raises(self):
        with pytest.raises(KeyError):
            self.make().tenant("zz")


def make_result():
    profile = TrafficProfile(tenants=tenants(), num_tiles=1, seed=4)
    records = [
        record("a", 0, 0.0, 0.0, 1e6, slo_cycles=1e6),
        record("a", 1, 1e6, 2e6, 4e6, slo_cycles=1e6),
        record("b", 0, 0.0, 5e5, 2e6),
        record("b", 1, 1e6, 2e6, 3e6),
    ]
    report = build_report(records, profile.tenants, 1.0, 4e6)
    return ServeResult(
        profile=profile,
        records=records,
        report=report,
        makespan_cycles=4e6,
        clock_ghz=1.0,
        issued=4,
        l2_miss_rate=0.25,
        dram_bytes=1_000_000,
    )


class TestExport:
    def test_dict_layout(self):
        data = serve_to_dict(make_result())
        assert data["meta"]["seed"] == 4
        assert data["meta"]["tiles"] == 1
        assert data["meta"]["fairness"] == pytest.approx(1.0)
        assert data["overall"]["p99_latency_ms"] > 0
        assert data["overall"]["goodput_qps"] > 0
        assert [t["tenant"] for t in data["tenants"]] == ["a", "b"]
        assert len(data["records"]) == 4

    def test_json_round_trip(self, tmp_path):
        path = export_serve_json(make_result(), tmp_path / "serve.json")
        data = json.loads(path.read_text())
        assert data["overall"]["completed"] == 4
        assert data["records"][0]["tenant"] == "a"

    def test_csv_one_row_per_record(self, tmp_path):
        path = export_serve_csv(make_result(), tmp_path / "serve.csv")
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 4
        assert {"tenant", "latency_cycles", "slo_met"} <= set(rows[0])

    def test_table_renders_every_tenant(self):
        text = serve_table(make_result())
        assert "tenant" in text
        for name in ("a", "b", "overall"):
            assert name in text
        assert "fairness" in text
