"""Unit tests for tenant specs, traffic profiles and arrival sources."""

import json

import pytest

from repro.serve.workload import (
    ClosedLoopSource,
    OpenLoopSource,
    TenantSpec,
    TrafficProfile,
    load_trace_profile,
    make_source,
    parse_tenant,
    requests_for,
)


def poisson_tenant(**overrides):
    base = dict(
        name="t", model="squeezenet", arrival="poisson", rate_qps=100.0, num_requests=8
    )
    base.update(overrides)
    return TenantSpec(**base)


class TestTenantSpec:
    def test_defaults_validate(self):
        spec = poisson_tenant()
        assert spec.model_key == ("squeezenet", 64, 32)
        assert spec.total_requests == 8

    def test_unknown_arrival_rejected(self):
        with pytest.raises(ValueError, match="arrival"):
            poisson_tenant(arrival="uniform")

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError, match="rate_qps"):
            poisson_tenant(rate_qps=0.0)

    def test_trace_needs_times(self):
        with pytest.raises(ValueError, match="trace"):
            poisson_tenant(arrival="trace")

    def test_trace_counts_its_times(self):
        spec = poisson_tenant(arrival="trace", trace_ms=(0.0, 1.0, 2.5))
        assert spec.total_requests == 3

    def test_bad_slo_rejected(self):
        with pytest.raises(ValueError, match="slo_ms"):
            poisson_tenant(slo_ms=-1.0)

    def test_negative_trace_offsets_rejected(self):
        with pytest.raises(ValueError, match="trace_ms"):
            poisson_tenant(arrival="trace", trace_ms=(-5.0, 0.0))

    def test_negative_think_time_rejected(self):
        with pytest.raises(ValueError, match="think_ms"):
            poisson_tenant(arrival="closed", think_ms=-1.0)


class TestTrafficProfile:
    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TrafficProfile(tenants=(poisson_tenant(), poisson_tenant()))

    def test_pin_outside_cluster_rejected(self):
        with pytest.raises(ValueError, match="pinned"):
            TrafficProfile(tenants=(poisson_tenant(pin_tile=2),), num_tiles=2)

    def test_total_requests(self):
        profile = TrafficProfile(
            tenants=(poisson_tenant(name="a"), poisson_tenant(name="b", num_requests=3))
        )
        assert profile.total_requests == 11

    def test_with_seed(self):
        profile = TrafficProfile(tenants=(poisson_tenant(),), seed=0)
        assert profile.with_seed(7).seed == 7

    def test_hashable_for_cache_keys(self):
        a = TrafficProfile(tenants=(poisson_tenant(),), seed=1)
        b = TrafficProfile(tenants=(poisson_tenant(),), seed=1)
        assert hash(a) == hash(b) and a == b


class TestArrivalSources:
    def test_poisson_is_sorted_positive_and_seeded(self):
        spec = poisson_tenant()
        t1 = make_source(spec, seed=0, clock_ghz=1.0).initial_times()
        t2 = make_source(spec, seed=0, clock_ghz=1.0).initial_times()
        t3 = make_source(spec, seed=1, clock_ghz=1.0).initial_times()
        assert t1 == t2
        assert t1 != t3
        assert len(t1) == spec.num_requests
        assert all(t > 0 for t in t1)
        assert t1 == sorted(t1)

    def test_poisson_mean_rate_roughly_matches(self):
        spec = poisson_tenant(rate_qps=1000.0, num_requests=400)
        times = make_source(spec, seed=0, clock_ghz=1.0).initial_times()
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(1e6, rel=0.25)  # 1ms at 1 GHz

    def test_tenant_streams_are_independent(self):
        """A tenant's arrivals depend only on (seed, its own name)."""
        a = make_source(poisson_tenant(name="a"), seed=0, clock_ghz=1.0).initial_times()
        a_again = make_source(poisson_tenant(name="a"), seed=0, clock_ghz=1.0).initial_times()
        b = make_source(poisson_tenant(name="b"), seed=0, clock_ghz=1.0).initial_times()
        assert a == a_again
        assert a != b

    def test_bursty_avoids_off_phases(self):
        spec = poisson_tenant(
            arrival="bursty", rate_qps=2000.0, num_requests=64, burst_on_ms=1.0, burst_off_ms=9.0
        )
        times = make_source(spec, seed=3, clock_ghz=1.0).initial_times()
        period = 10.0e6  # cycles at 1 GHz
        assert all((t % period) <= 1.0e6 for t in times), "arrival landed in an off phase"
        assert times == sorted(times)

    def test_trace_times_scale_with_clock(self):
        spec = poisson_tenant(arrival="trace", trace_ms=(1.0, 2.0))
        assert make_source(spec, 0, clock_ghz=2.0).initial_times() == [2e6, 4e6]

    def test_closed_loop_issues_on_completion(self):
        spec = poisson_tenant(arrival="closed", num_requests=4, concurrency=2, think_ms=1.0)
        source = make_source(spec, seed=0, clock_ghz=1.0)
        assert isinstance(source, ClosedLoopSource)
        assert source.initial_times() == [0.0, 0.0]
        assert source.next_after_completion(5e6) == pytest.approx(6e6)
        assert source.next_after_completion(7e6) == pytest.approx(8e6)
        assert source.next_after_completion(9e6) is None  # budget spent

    def test_open_loop_never_reissues(self):
        source = make_source(poisson_tenant(), seed=0, clock_ghz=1.0)
        assert isinstance(source, OpenLoopSource)
        assert source.next_after_completion(1e6) is None

    def test_streamed_pulls_match_materialised_list(self):
        spec = poisson_tenant(num_requests=6)
        streamed = make_source(spec, seed=0, clock_ghz=1.0)
        pulls = [streamed.next_arrival() for _ in range(6)]
        assert streamed.next_arrival() is None
        assert pulls == make_source(spec, seed=0, clock_ghz=1.0).initial_times()
        assert streamed.remaining_initial == 0
        assert streamed.issued == 6


class TestSourceStateRoundTrip:
    """Checkpoint regression: state_dict/load_state must resume the exact
    arrival sequence, RNG draws included, on a freshly built source."""

    def _continuation(self, spec, pulled):
        source = make_source(spec, seed=0, clock_ghz=1.0)
        for _ in range(pulled):
            source.next_arrival()
        state = source.state_dict()
        expected = source.initial_times()  # drains the original
        fresh = make_source(spec, seed=0, clock_ghz=1.0)
        fresh.load_state(state)
        return expected, fresh

    def test_poisson_rng_state_round_trips(self):
        expected, fresh = self._continuation(poisson_tenant(num_requests=8), pulled=3)
        assert fresh.initial_times() == expected
        assert fresh.remaining_initial == 0

    def test_bursty_on_time_cursor_round_trips(self):
        spec = poisson_tenant(
            arrival="bursty", rate_qps=2000.0, num_requests=12,
            burst_on_ms=1.0, burst_off_ms=9.0,
        )
        expected, fresh = self._continuation(spec, pulled=5)
        assert fresh.initial_times() == expected

    def test_closed_loop_budget_round_trips(self):
        spec = poisson_tenant(arrival="closed", num_requests=5, concurrency=2, think_ms=1.0)
        source = make_source(spec, seed=0, clock_ghz=1.0)
        source.initial_times()
        assert source.next_after_completion(1e6) is not None
        fresh = make_source(spec, seed=0, clock_ghz=1.0)
        fresh.load_state(source.state_dict())
        assert fresh.next_arrival() is None  # initial stream already drained
        assert fresh.next_after_completion(2e6) == pytest.approx(3e6)
        assert fresh.next_after_completion(3e6) == pytest.approx(4e6)
        assert fresh.next_after_completion(4e6) is None  # budget spent
        assert fresh.issued == spec.num_requests

    def test_issued_counts_follow_ups(self):
        spec = poisson_tenant(arrival="closed", num_requests=4, concurrency=2, think_ms=1.0)
        source = make_source(spec, seed=0, clock_ghz=1.0)
        assert source.issued == 2  # the pre-scheduled stream exists statically
        source.next_after_completion(1e6)
        assert source.issued == 3


class TestRequestsFor:
    def test_wraps_times_with_slo_and_hints(self):
        spec = poisson_tenant(slo_ms=10.0, priority=2, pin_tile=None)
        reqs = requests_for(spec, [100.0, 200.0], start_index=5, cost_hint=42.0, clock_ghz=1.0)
        assert [r.index for r in reqs] == [5, 6]
        assert all(r.slo_cycles == pytest.approx(10.0e6) for r in reqs)
        assert all(r.cost_hint == 42.0 and r.priority == 2 for r in reqs)


class TestParsing:
    def test_parse_tenant_round_trip(self):
        spec = parse_tenant(
            "model=resnet50,qps=40,requests=12,arrival=bursty,priority=1,"
            "slo_ms=50,input_hw=96,pin_tile=0"
        )
        assert spec.model == "resnet50"
        assert spec.rate_qps == 40.0
        assert spec.num_requests == 12
        assert spec.arrival == "bursty"
        assert spec.priority == 1
        assert spec.slo_ms == 50.0
        assert spec.input_hw == 96
        assert spec.pin_tile == 0

    def test_parse_tenant_defaults_name_to_model(self):
        assert parse_tenant("model=bert").name == "bert"
        assert parse_tenant("model=bert", default_name="x").name == "x"

    def test_parse_tenant_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown tenant field"):
            parse_tenant("model=bert,qqs=4")

    def test_parse_tenant_needs_model(self):
        with pytest.raises(ValueError, match="model"):
            parse_tenant("qps=4")

    def test_load_trace_profile(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(
            json.dumps(
                {
                    "tenants": [
                        {"name": "a", "model": "squeezenet", "arrival_ms": [0.0, 2.0]},
                        {"model": "bert", "arrival_ms": [1.0], "slo_ms": 9.0, "seq": 16},
                    ]
                }
            )
        )
        profile = load_trace_profile(path, num_tiles=2, seed=3)
        assert profile.num_tiles == 2 and profile.seed == 3
        assert [t.name for t in profile.tenants] == ["a", "bert"]
        assert profile.tenants[0].trace_ms == (0.0, 2.0)
        assert profile.tenants[1].slo_ms == 9.0
        assert profile.tenants[1].seq == 16
        assert profile.total_requests == 3
