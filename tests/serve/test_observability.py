"""Serving-engine telemetry: span parity across replay, live metrics.

The record/replay fast path must be invisible to observers: a replayed
serving run emits exactly the same request spans — same count, same
tenant/tile attribution — as the recording run, differing only in the
``replayed`` annotation.  Streaming metrics must be readable while the
simulation is in flight (snapshots strictly before the final report).
"""

import pytest

from repro.core.config import default_config
from repro.obs.export import to_chrome_trace, validate_chrome_trace
from repro.obs.metrics import MetricStream
from repro.obs.tracer import Tracer
from repro.serve import TenantSpec, TrafficProfile, simulate_serving

MODEL = dict(model="squeezenet", input_hw=32)


def tenant(name="t", qps=150.0, n=6, **overrides):
    base = dict(name=name, arrival="poisson", rate_qps=qps, num_requests=n, **MODEL)
    base.update(overrides)
    return TenantSpec(**base)


def two_tenant_profile(seed=0):
    return TrafficProfile(
        tenants=(tenant("a", pin_tile=0), tenant("b", pin_tile=1, n=4)),
        num_tiles=2,
        seed=seed,
    )


def traced_run(replay: bool, seed=0):
    tracer = Tracer.for_cycles(default_config().clock_ghz, run_id="parity", seed=seed)
    result = simulate_serving(two_tenant_profile(seed), replay=replay, tracer=tracer)
    return tracer, result


def request_spans(tracer):
    """(lane, tenant, request index) of every request span, sorted."""
    out = []
    for event in tracer.events():
        if event[0] != "X":
            continue
        args = event[5] or {}
        if "tenant" in args:
            out.append((event[1], args["tenant"], args["index"]))
    return sorted(out)


class TestReplaySpanParity:
    def test_replayed_run_emits_identical_request_spans(self):
        rec_tracer, rec = traced_run(replay=False)
        rep_tracer, rep = traced_run(replay=True)
        assert rep.replayed > 0, "no request ever replayed"
        rec_spans = request_spans(rec_tracer)
        rep_spans = request_spans(rep_tracer)
        assert len(rec_spans) == rec.completed
        assert rep_spans == rec_spans  # same count, tenants and tile lanes

    def test_replayed_annotation_distinguishes_the_paths(self):
        rec_tracer, __ = traced_run(replay=False)
        rep_tracer, rep = traced_run(replay=True)

        def flags(tracer):
            return [
                e[5]["replayed"]
                for e in tracer.events()
                if e[0] == "X" and e[5] and "replayed" in e[5]
            ]

        assert set(flags(rec_tracer)) == {False}
        assert flags(rep_tracer).count(True) == rep.replayed

    def test_both_paths_export_valid_chrome_traces(self):
        for replay in (False, True):
            tracer, __ = traced_run(replay=replay)
            assert validate_chrome_trace(to_chrome_trace(tracer)) == []


class TestServingTraceContent:
    def test_arrival_instants_per_issued_request(self):
        tracer, result = traced_run(replay=True)
        arrivals = [e for e in tracer.events() if e[0] == "i" and e[2] == "arrival"]
        assert len(arrivals) == result.issued
        lanes = {e[1] for e in arrivals}
        assert lanes == {"tenant:a", "tenant:b"}

    def test_tile_lanes_and_queue_args(self):
        tracer, __ = traced_run(replay=True)
        spans = [e for e in tracer.events() if e[0] == "X"]
        assert {e[1] for e in spans} <= {"tile0", "tile1"}
        for span in spans:
            args = span[5]
            assert args["queue_ms"] >= 0.0
            assert isinstance(args["slo_met"], bool)

    def test_lanes_are_declared_with_processes(self):
        tracer, __ = traced_run(replay=True)
        lanes = tracer.lanes()
        assert lanes["tile0"][0] == "serve"
        assert lanes["tenant:a"][0] == "traffic"
        assert lanes["cluster"][0] == "serve"


class TestServingLiveMetrics:
    def test_snapshots_stream_while_in_flight(self):
        ticks = []
        metrics = MetricStream(every=4, on_snapshot=ticks.append)
        result = simulate_serving(two_tenant_profile(), metrics=metrics)
        assert result.completed == 10
        # every=4 over 10 completions -> in-flight ticks at 4 and 8, plus
        # the closing whole-run snapshot.
        assert len(metrics.snapshots) == 3
        assert ticks == metrics.snapshots
        completed = [s["completed"] for s in metrics.snapshots]
        assert completed == [4, 8, 10]
        final = metrics.snapshots[-1]
        assert final["latency_ms_p99"] > 0.0
        assert final["goodput_qps"] > 0.0
        assert 0.0 < final["utilization"] <= 1.0
        # Snapshot timestamps are simulated seconds and non-decreasing.
        ts = [s["t"] for s in metrics.snapshots]
        assert ts == sorted(ts) and ts[0] > 0.0

    def test_metrics_match_final_report(self):
        metrics = MetricStream(every=64)
        result = simulate_serving(two_tenant_profile(), metrics=metrics)
        final = metrics.snapshots[-1]
        assert final["completed"] == result.completed
        report = result.report.overall
        assert final["latency_ms_mean"] == pytest.approx(report.mean_ms, rel=1e-6)
        assert final["goodput_qps"] == pytest.approx(report.goodput_qps, rel=1e-6)

    def test_untraced_run_results_are_unaffected(self):
        """Attaching a tracer/metrics must not change simulation results."""
        plain = simulate_serving(two_tenant_profile())
        tracer = Tracer.for_cycles(default_config().clock_ghz)
        observed = simulate_serving(
            two_tenant_profile(), tracer=tracer, metrics=MetricStream(every=2)
        )
        assert observed.records == plain.records
        assert observed.makespan_cycles == plain.makespan_cycles
