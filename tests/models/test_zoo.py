"""Model zoo tests: shapes, MACs and parameter counts of the five DNNs."""

import pytest

from repro.models import build_model, model_names
from repro.models.bert import FFN, HEADS, HIDDEN


class TestRegistry:
    def test_all_five_models_present(self):
        assert model_names() == ["alexnet", "bert", "mobilenetv2", "resnet50", "squeezenet"]

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            build_model("vgg16")

    def test_case_insensitive(self):
        assert build_model("ResNet50").name == "resnet50"

    @pytest.mark.parametrize("name", ["resnet50", "alexnet", "squeezenet", "mobilenetv2", "bert"])
    def test_models_validate(self, name):
        graph = build_model(name)
        graph.validate()
        assert graph.outputs


class TestResNet50:
    def test_macs_match_published(self):
        """He et al. report 3.8-4.1 GFLOPs (multiply-adds) at 224x224."""
        graph = build_model("resnet50")
        assert 3.8e9 <= graph.total_macs() <= 4.3e9

    def test_parameter_count(self):
        """~25.5M parameters."""
        graph = build_model("resnet50")
        assert 24e6 <= graph.total_weight_bytes() <= 27e6  # int8: bytes == params

    def test_conv_count(self):
        graph = build_model("resnet50")
        assert graph.op_counts()["Conv"] == 53

    def test_resadd_count(self):
        graph = build_model("resnet50")
        assert graph.op_counts()["Add"] == 16

    def test_output_is_1000_classes(self):
        graph = build_model("resnet50")
        assert graph.tensor(graph.outputs[0]).shape == (1, 1000)

    def test_scales_with_input(self):
        small = build_model("resnet50", input_hw=112)
        full = build_model("resnet50", input_hw=224)
        assert full.total_macs() > 3 * small.total_macs()


class TestAlexNet:
    def test_macs(self):
        """Single-tower AlexNet: ~1.13 GMACs."""
        graph = build_model("alexnet")
        assert 1.0e9 <= graph.total_macs() <= 1.3e9

    def test_parameters_dominated_by_fc(self):
        """~62M parameters, mostly in the fully connected layers."""
        graph = build_model("alexnet")
        assert 58e6 <= graph.total_weight_bytes() <= 66e6

    def test_five_convs_three_fcs(self):
        counts = build_model("alexnet").op_counts()
        assert counts["Conv"] == 5
        assert counts["Gemm"] == 3


class TestSqueezeNet:
    def test_macs(self):
        """SqueezeNet v1.1: ~0.35 GMACs."""
        graph = build_model("squeezenet")
        assert 0.30e9 <= graph.total_macs() <= 0.40e9

    def test_tiny_parameter_count(self):
        """The design goal: ~1.2M parameters."""
        graph = build_model("squeezenet")
        assert graph.total_weight_bytes() <= 1.5e6

    def test_eight_fire_modules(self):
        counts = build_model("squeezenet").op_counts()
        assert counts["Concat"] == 8
        assert counts["Conv"] == 26  # stem + 8 x (squeeze + 2 expands) + conv10


class TestMobileNetV2:
    def test_macs(self):
        """~0.3 GMACs at 224x224."""
        graph = build_model("mobilenetv2")
        assert 0.27e9 <= graph.total_macs() <= 0.33e9

    def test_parameter_count(self):
        """~3.5M parameters."""
        graph = build_model("mobilenetv2")
        assert 3.0e6 <= graph.total_weight_bytes() <= 4.0e6

    def test_depthwise_layers(self):
        counts = build_model("mobilenetv2").op_counts()
        assert counts["DepthwiseConv"] == 17

    def test_residual_connections(self):
        counts = build_model("mobilenetv2").op_counts()
        assert counts["Add"] == 10

    def test_dwconv_macs_small_fraction(self):
        """Depthwise MACs are a small share but map poorly to the array."""
        graph = build_model("mobilenetv2")
        dw_macs = sum(
            graph.node_macs(n) for n in graph.nodes if n.op == "DepthwiseConv"
        )
        assert dw_macs / graph.total_macs() < 0.15


class TestBERT:
    def test_macs_at_seq_128(self):
        """BERT-base encoder at seq 128: ~11.2 GMACs."""
        graph = build_model("bert", seq=128)
        assert 10.5e9 <= graph.total_macs() <= 12.0e9

    def test_parameter_count(self):
        """Encoder stack: ~85M weight parameters (embeddings excluded)."""
        graph = build_model("bert")
        assert 80e6 <= graph.total_weight_bytes() <= 90e6

    def test_layer_structure(self):
        counts = build_model("bert", seq=64).op_counts()
        assert counts["Gemm"] == 12 * 6  # q, k, v, proj, ff1, ff2
        assert counts["MatMul"] == 12 * 2  # scores, context
        assert counts["Softmax"] == 12
        assert counts["LayerNorm"] == 24
        assert counts["Gelu"] == 12

    def test_attention_macs_exact(self):
        """Folded attention preserves per-head MAC totals."""
        seq = 64
        graph = build_model("bert", seq=seq, layers=1)
        scores = next(n for n in graph.nodes if n.name.endswith("_scores"))
        ctx = next(n for n in graph.nodes if n.name.endswith("_ctx"))
        per_head = seq * (HIDDEN // HEADS) * seq
        assert graph.node_macs(scores) == HEADS * per_head
        assert graph.node_macs(ctx) == HEADS * per_head

    def test_softmax_covers_all_heads(self):
        graph = build_model("bert", seq=64, layers=1)
        softmax = next(n for n in graph.nodes if n.op == "Softmax")
        assert softmax.attrs["batch"] == HEADS

    def test_ffn_shapes(self):
        graph = build_model("bert", seq=32, layers=1)
        ff1 = next(n for n in graph.nodes if n.name.endswith("_ff1"))
        assert graph.tensor(ff1.outputs[0]).shape == (32, FFN)

    def test_seq_scaling(self):
        short = build_model("bert", seq=64)
        long = build_model("bert", seq=128)
        assert long.total_macs() > 1.8 * short.total_macs()
