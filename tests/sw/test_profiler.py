"""Tests for the run profiler."""

import pytest

from repro.core.config import default_config
from repro.core.generator import SoftwareParams
from repro.soc.soc import make_soc
from repro.sw.compiler import compile_graph
from repro.sw.profiler import RunProfiler
from repro.sw.runtime import run_model_on_tile


CFG = default_config().with_im2col(True)


def run_profiled(graph):
    soc = make_soc(gemmini=CFG)
    model = compile_graph(graph, SoftwareParams.from_config(CFG))
    profiler = RunProfiler(soc).start()
    run_model_on_tile(soc.tile, model)
    return profiler.stop(), soc


@pytest.fixture(scope="module")
def report_and_soc():
    from tests.sw.test_runtime import tiny_cnn

    return run_profiled(tiny_cnn(32))


class TestTLBProfile:
    def test_requests_counted(self, report_and_soc):
        report, __ = report_and_soc
        assert report.tlb.requests > 0

    def test_levels_partition(self, report_and_soc):
        report, __ = report_and_soc
        tlb = report.tlb
        assert tlb.filter_hits + tlb.private_hits + tlb.shared_hits + tlb.walks == tlb.requests

    def test_hit_rate_bounds(self, report_and_soc):
        report, __ = report_and_soc
        assert 0.0 <= report.tlb.hit_rate_including_filters <= 1.0
        assert 0.0 <= report.tlb.private_miss_rate <= 1.0

    def test_trace_collected(self, report_and_soc):
        report, __ = report_and_soc
        assert len(report.tlb.miss_rate_trace) >= 1


class TestMemoryProfile:
    def test_l2_counts(self, report_and_soc):
        report, __ = report_and_soc
        assert report.memory.l2_accesses == report.memory.l2_hits + report.memory.l2_misses
        assert report.memory.l2_accesses > 0

    def test_miss_rate(self, report_and_soc):
        report, __ = report_and_soc
        assert 0.0 <= report.memory.l2_miss_rate <= 1.0

    def test_dram_bytes_positive(self, report_and_soc):
        report, __ = report_and_soc
        assert report.memory.dram_bytes > 0
        assert report.memory.bus_bytes > 0


class TestDeltaSemantics:
    def test_second_window_excludes_first(self):
        from tests.sw.test_runtime import tiny_cnn

        soc = make_soc(gemmini=CFG)
        model = compile_graph(tiny_cnn(16), SoftwareParams.from_config(CFG))
        profiler = RunProfiler(soc).start()
        run_model_on_tile(soc.tile, model)
        first = profiler.stop()

        profiler.start()
        second = profiler.stop()  # nothing ran in between
        assert second.tlb.requests == 0
        assert second.memory.l2_accesses == 0
        assert first.tlb.requests > 0
