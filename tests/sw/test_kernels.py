"""Unit tests for the macro-op kernels."""

import pytest

from repro.core.config import default_config
from repro.core.peripherals import ConvParams, PoolParams
from repro.soc.soc import make_soc
from repro.sw.kernels import TileKernels


@pytest.fixture
def kernels():
    soc = make_soc(gemmini=default_config().with_im2col(True))
    vm = soc.tile.vm
    vm.alloc(64 << 20, "arena")  # map a large arena for kernel streams
    return TileKernels(soc.tile), soc


BASE = 0x1000_0000


class TestMatmulOps:
    def test_op_stream_structure(self, kernels):
        k, __ = kernels
        ops = list(k.matmul_ops(BASE, BASE + (1 << 20), BASE + (2 << 20), 64, 64, 64))
        units = [op.unit for op in ops]
        # One iteration: load A, load B, exec, store.
        assert units == ["load", "load", "exec", "store"]

    def test_multi_tile_k_accumulates_before_store(self, kernels):
        k, __ = kernels
        ops = list(
            k.matmul_ops(BASE, BASE + (1 << 20), BASE + (2 << 20), 64, 4096, 64)
        )
        stores = [op for op in ops if op.unit == "store"]
        execs = [op for op in ops if op.unit == "exec"]
        assert len(stores) == 1
        assert len(execs) > 1  # several k-tiles accumulate into one C tile

    def test_runs_to_completion(self, kernels):
        k, __ = kernels
        result = k.run_matmul(BASE, BASE + (1 << 20), BASE + (2 << 20), 256, 256, 256)
        assert result.cycles > 0
        assert result.macs == 256 ** 3

    def test_bigger_matmul_takes_longer(self, kernels):
        k, soc = kernels
        small = k.run_matmul(BASE, BASE + (1 << 20), BASE + (2 << 20), 128, 128, 128)
        big = k.run_matmul(BASE, BASE + (1 << 20), BASE + (2 << 20), 512, 512, 512)
        assert big.cycles > small.cycles

    def test_bias_adds_load(self, kernels):
        k, __ = kernels
        with_bias = list(
            k.matmul_ops(BASE, BASE + (1 << 20), BASE + (2 << 20), 64, 64, 64,
                         bias_vaddr=BASE + (3 << 20))
        )
        without = list(
            k.matmul_ops(BASE, BASE + (1 << 20), BASE + (2 << 20), 64, 64, 64)
        )
        assert len(with_bias) == len(without) + 1

    def test_dma_traffic_goes_through_l2(self, kernels):
        k, soc = kernels
        k.run_matmul(BASE, BASE + (1 << 20), BASE + (2 << 20), 256, 256, 256)
        assert soc.mem.l2.stats.value("accesses") > 0

    @pytest.mark.parametrize("m,k_dim,n", [(64, 64, 64), (300, 500, 700), (17, 33, 49)])
    def test_store_traffic_exactly_covers_c(self, kernels, m, k_dim, n):
        """Conservation: the kernel writes exactly M*N output bytes."""
        k, __ = kernels
        before = k.accel.dma.stats.value("bytes_written")
        k.run_matmul(BASE, BASE + (8 << 20), BASE + (16 << 20), m, k_dim, n)
        assert k.accel.dma.stats.value("bytes_written") - before == m * n

    def test_load_traffic_at_least_operands(self, kernels):
        """Reads cover A and B at least once (refetch only adds)."""
        k, __ = kernels
        m = k_dim = n = 512
        before = k.accel.dma.stats.value("bytes_read")
        k.run_matmul(BASE, BASE + (8 << 20), BASE + (16 << 20), m, k_dim, n)
        read = k.accel.dma.stats.value("bytes_read") - before
        assert read >= m * k_dim + k_dim * n

    def test_manual_tiling_respected(self, kernels):
        from repro.sw.tiling import manual_tiling

        k, __ = kernels
        tiling = manual_tiling(k.params, 128, 128, 128, 2, 2, 2)
        ops = list(
            k.matmul_ops(BASE, BASE + (1 << 20), BASE + (2 << 20), 128, 128, 128,
                         tiling=tiling)
        )
        execs = [op for op in ops if op.unit == "exec"]
        assert len(execs) == tiling.total_iterations


class TestConvOps:
    def conv(self):
        return ConvParams(in_h=16, in_w=16, in_ch=32, out_ch=32, kernel=3, padding=1)

    def test_accel_im2col_no_cpu_cost(self, kernels):
        k, __ = kernels
        ops, cpu_cycles = k.conv_ops(
            self.conv(), BASE, BASE + (1 << 20), BASE + (2 << 20),
            on_accel_im2col=True,
        )
        assert cpu_cycles == 0.0
        assert len(list(ops)) > 0

    def test_cpu_im2col_charges_host(self, kernels):
        k, __ = kernels
        conv = self.conv()
        ops, cpu_cycles = k.conv_ops(
            conv, BASE, BASE + (1 << 20), BASE + (2 << 20),
            on_accel_im2col=False, im2col_vaddr=BASE + (3 << 20),
        )
        expected = k.tile.cpu.im2col_cycles(conv.num_patches * conv.patch_size)
        assert cpu_cycles == pytest.approx(expected)
        assert len(list(ops)) > 0

    def test_accel_im2col_moves_less_data(self, kernels):
        k, soc = kernels
        conv = self.conv()
        before = soc.mem.bus.stats.value("bytes")
        ops, __c = k.conv_ops(conv, BASE, BASE + (1 << 20), BASE + (2 << 20),
                              on_accel_im2col=True)
        k.run_ops(ops)
        unit_bytes = soc.mem.bus.stats.value("bytes") - before

        before = soc.mem.bus.stats.value("bytes")
        ops, __c = k.conv_ops(conv, BASE, BASE + (1 << 20), BASE + (2 << 20),
                              on_accel_im2col=False, im2col_vaddr=BASE + (3 << 20))
        k.run_ops(ops)
        cpu_bytes = soc.mem.bus.stats.value("bytes") - before
        assert unit_bytes < cpu_bytes  # k^2 patch amplification avoided


class TestDwconvOps:
    def test_low_utilisation(self, kernels):
        """Depthwise conv achieves a few percent of peak MACs/cycle."""
        k, __ = kernels
        conv = ConvParams(in_h=28, in_w=28, in_ch=96, out_ch=96, kernel=3, padding=1)
        ops = list(k.dwconv_ops(conv, BASE, BASE + (1 << 20), BASE + (2 << 20)))
        exec_cycles = sum(op.cycles for op in ops if op.unit == "exec")
        macs = conv.num_patches * 9 * conv.in_ch
        utilisation = macs / (exec_cycles * k.accel.config.num_pes)
        assert utilisation < 0.10

    def test_channel_grouping(self, kernels):
        k, __ = kernels
        conv = ConvParams(in_h=8, in_w=8, in_ch=512, out_ch=512, kernel=3, padding=1)
        ops = list(k.dwconv_ops(conv, BASE, BASE + (1 << 20), BASE + (2 << 20)))
        assert any(op.unit == "exec" for op in ops)
        assert any(op.unit == "store" for op in ops)


class TestResaddOps:
    def test_memory_bound_structure(self, kernels):
        k, __ = kernels
        ops = list(k.resadd_ops(BASE, BASE + (1 << 20), BASE + (2 << 20), 65536))
        units = [op.unit for op in ops]
        assert units.count("load") == 2 * units.count("store")
        assert "exec" not in units  # pure accumulator data movement

    def test_invalid_elements(self, kernels):
        k, __ = kernels
        with pytest.raises(ValueError):
            list(k.resadd_ops(BASE, BASE, BASE, 0))

    def test_traffic_is_three_streams(self, kernels):
        k, soc = kernels
        elements = 1 << 20
        before_rd = k.accel.dma.stats.value("bytes_read")
        before_wr = k.accel.dma.stats.value("bytes_written")
        k.run_resadd(BASE, BASE + (4 << 20), BASE + (8 << 20), elements)
        assert k.accel.dma.stats.value("bytes_read") - before_rd == 2 * elements
        assert k.accel.dma.stats.value("bytes_written") - before_wr == elements


class TestPoolOps:
    def test_pool_stream(self, kernels):
        k, __ = kernels
        pool = PoolParams(size=2, stride=2, in_h=16, in_w=16)
        ops = list(k.pool_ops(pool, 64, BASE, BASE + (1 << 20)))
        assert [op.unit for op in ops] == ["load", "exec", "store"]

    def test_pool_requires_engine(self):
        from dataclasses import replace

        soc = make_soc(gemmini=replace(default_config(), has_pooling=False))
        soc.tile.vm.alloc(1 << 20, "arena")
        k = TileKernels(soc.tile)
        pool = PoolParams(size=2, stride=2, in_h=8, in_w=8)
        with pytest.raises(ValueError):
            k.pool_cycles(pool, 16)
