"""Round-trip tests for the ONNX-subset JSON model format."""

import pytest

from repro.models import build_model
from repro.sw.graph import GraphError
from repro.sw.onnx_json import graph_from_json, graph_to_json, load_graph, save_graph


class TestRoundTrip:
    def test_simple_graph(self):
        from tests.sw.test_graph import simple_conv_graph

        g = simple_conv_graph()
        restored = graph_from_json(graph_to_json(g))
        assert restored.name == g.name
        assert restored.tensors.keys() == g.tensors.keys()
        assert len(restored.nodes) == len(g.nodes)
        assert restored.inputs == g.inputs
        assert restored.outputs == g.outputs

    @pytest.mark.parametrize("model", ["alexnet", "squeezenet"])
    def test_zoo_models_round_trip(self, model):
        g = build_model(model)
        restored = graph_from_json(graph_to_json(g))
        assert restored.total_macs() == g.total_macs()
        assert restored.total_weight_bytes() == g.total_weight_bytes()
        for a, b in zip(g.nodes, restored.nodes):
            assert a.op == b.op
            assert a.attrs == b.attrs

    def test_shapes_preserved(self):
        g = build_model("bert", seq=32, layers=1)
        restored = graph_from_json(graph_to_json(g))
        for name, spec in g.tensors.items():
            assert restored.tensor(name).shape == spec.shape

    def test_file_round_trip(self, tmp_path):
        g = build_model("alexnet", input_hw=64)
        path = tmp_path / "alexnet.json"
        save_graph(g, str(path))
        restored = load_graph(str(path))
        assert restored.total_macs() == g.total_macs()

    def test_invalid_json_rejected(self):
        with pytest.raises(GraphError):
            graph_from_json("{not json")

    def test_wrong_schema_rejected(self):
        with pytest.raises(GraphError):
            graph_from_json('{"schema": 99, "tensors": [], "nodes": []}')

    def test_corrupt_graph_fails_validation(self):
        from tests.sw.test_graph import simple_conv_graph

        text = graph_to_json(simple_conv_graph())
        # Make the conv node consume a tensor nothing produces.
        broken = text.replace('["x", "w"]', '["ghost", "w"]')
        assert broken != text
        with pytest.raises(GraphError):
            graph_from_json(broken)
