"""Unit and property tests for the tile-size heuristics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import default_config, GemminiConfig
from repro.core.generator import SoftwareParams
from repro.sw.tiling import (
    MatmulTiling,
    fits_budgets,
    manual_tiling,
    plan_matmul_tiling,
)


PARAMS = SoftwareParams.from_config(default_config())


class TestMatmulTiling:
    def test_tile_extents(self):
        t = MatmulTiling(i_blocks=2, j_blocks=3, k_blocks=4, dim=16, m=100, k=200, n=300)
        assert t.tile_m == 32
        assert t.tile_n == 48
        assert t.tile_k == 64

    def test_outer_trip_counts(self):
        t = MatmulTiling(i_blocks=2, j_blocks=2, k_blocks=2, dim=16, m=100, k=64, n=64)
        assert t.outer_i == 4  # ceil(100/32)
        assert t.outer_k == 2
        assert t.outer_j == 2
        assert t.total_iterations == 16

    def test_clipped_edges(self):
        t = MatmulTiling(i_blocks=2, j_blocks=2, k_blocks=2, dim=16, m=40, k=40, n=40)
        m, k, n = t.clipped(t.outer_i - 1, t.outer_j - 1, t.outer_k - 1)
        assert m == 8  # 40 - 32
        assert k == 8
        assert n == 8

    def test_footprints(self):
        t = MatmulTiling(i_blocks=2, j_blocks=3, k_blocks=4, dim=16, m=64, k=128, n=96)
        assert t.sp_rows_used() == (2 * 4 + 4 * 3) * 16
        assert t.acc_rows_used() == 2 * 3 * 16

    def test_validation(self):
        with pytest.raises(ValueError):
            MatmulTiling(0, 1, 1, 16, 10, 10, 10)
        with pytest.raises(ValueError):
            MatmulTiling(1, 1, 1, 16, 0, 10, 10)

    def test_loop_order_validation(self):
        with pytest.raises(ValueError, match="loop_order"):
            MatmulTiling(1, 1, 1, 16, 10, 10, 10, loop_order="kji")

    def test_dict_roundtrip(self):
        t = MatmulTiling(2, 3, 4, 16, 64, 128, 96, loop_order="jik",
                         double_buffer=False)
        assert MatmulTiling.from_dict(t.to_dict()) == t

    def test_from_dict_defaults_legacy_records(self):
        """Records written before loop_order/double_buffer existed load as
        the historical (ijk, double-buffered) schedule."""
        data = {"i_blocks": 2, "j_blocks": 2, "k_blocks": 2, "dim": 16,
                "m": 64, "k": 64, "n": 64}
        t = MatmulTiling.from_dict(data)
        assert t.loop_order == "ijk"
        assert t.double_buffer is True

    def test_fits_budgets_double_buffer_halves(self):
        # 8+8 blocks of 16 rows = 256 sp rows: fits the full scratchpad
        # of a tiny config but not half of it.
        cfg = GemminiConfig(
            sp_capacity_bytes=16 * 256,  # 256 rows of DIM int8 elements
            sp_banks=1,
            acc_capacity_bytes=64 * 64,  # 64 rows of DIM int32 elements
            acc_banks=1,
        )
        params = SoftwareParams.from_config(cfg)
        single = MatmulTiling(1, 1, 8, 16, 16, 512, 16, double_buffer=False)
        double = MatmulTiling(1, 1, 8, 16, 16, 512, 16, double_buffer=True)
        assert fits_budgets(params, single)
        assert not fits_budgets(params, double)


class TestPlanHeuristic:
    def test_small_matmul_single_tile(self):
        t = plan_matmul_tiling(PARAMS, 16, 16, 16)
        assert t.total_iterations == 1

    def test_fits_scratchpad_budget(self):
        t = plan_matmul_tiling(PARAMS, 4096, 4096, 4096)
        assert t.sp_rows_used() <= PARAMS.sp_rows // 2
        assert t.acc_rows_used() <= PARAMS.acc_rows // 2

    def test_never_exceeds_matrix_extent(self):
        t = plan_matmul_tiling(PARAMS, 20, 20, 20)
        assert t.i_blocks <= 2
        assert t.j_blocks <= 2
        assert t.k_blocks <= 2

    def test_maximises_utilisation(self):
        """The heuristic should leave no room to grow any dimension."""
        t = plan_matmul_tiling(PARAMS, 10000, 10000, 10000)
        budget_sp = PARAMS.sp_rows // 2
        budget_acc = PARAMS.acc_rows // 2
        for di, dj, dk in ((1, 0, 0), (0, 1, 0), (0, 0, 1)):
            sp = ((t.i_blocks + di) * (t.k_blocks + dk)
                  + (t.k_blocks + dk) * (t.j_blocks + dj)) * 16
            acc = (t.i_blocks + di) * (t.j_blocks + dj) * 16
            assert sp > budget_sp or acc > budget_acc

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            plan_matmul_tiling(PARAMS, 0, 4, 4)

    def test_tiny_scratchpad_rejected(self):
        cfg = GemminiConfig(
            sp_capacity_bytes=16 * 16 * 2,  # 2 rows only
            sp_banks=1,
            acc_capacity_bytes=16 * 64,
            acc_banks=1,
        )
        params = SoftwareParams.from_config(cfg)
        with pytest.raises(ValueError):
            plan_matmul_tiling(params, 64, 64, 64)

    def test_no_double_buffer_doubles_budget(self):
        small = plan_matmul_tiling(PARAMS, 8192, 8192, 8192, double_buffer=True)
        big = plan_matmul_tiling(PARAMS, 8192, 8192, 8192, double_buffer=False)
        assert big.sp_rows_used() >= small.sp_rows_used()

    def test_max_blocks_cap(self):
        t = plan_matmul_tiling(PARAMS, 8192, 8192, 8192, max_blocks=2)
        assert max(t.i_blocks, t.j_blocks, t.k_blocks) <= 2

    @given(
        st.integers(min_value=1, max_value=3000),
        st.integers(min_value=1, max_value=3000),
        st.integers(min_value=1, max_value=3000),
    )
    @settings(max_examples=40)
    def test_always_fits_and_covers(self, m, k, n):
        t = plan_matmul_tiling(PARAMS, m, k, n)
        assert t.sp_rows_used() <= PARAMS.sp_rows // 2
        assert t.acc_rows_used() <= PARAMS.acc_rows // 2
        # Outer loops cover the full extents.
        assert t.outer_i * t.tile_m >= m
        assert t.outer_j * t.tile_n >= n
        assert t.outer_k * t.tile_k >= k


class TestManualTiling:
    def test_accepts_fitting_tiles(self):
        t = manual_tiling(PARAMS, 256, 256, 256, 4, 4, 4)
        assert t.i_blocks == 4

    def test_rejects_oversized_tiles(self):
        with pytest.raises(ValueError):
            manual_tiling(PARAMS, 10000, 10000, 10000, 64, 64, 64)

    def test_rejects_acc_overflow(self):
        # Accumulator budget (default 64 KB -> 1024 rows, half = 512) caps
        # i*j at 32 blocks.
        with pytest.raises(ValueError):
            manual_tiling(PARAMS, 2048, 64, 2048, 16, 16, 1)

    def test_acc_overflow_message_names_budget(self):
        with pytest.raises(ValueError, match="accumulator rows, budget is 512"):
            manual_tiling(PARAMS, 2048, 64, 2048, 16, 16, 1)

    def test_sp_overflow_message_names_budget(self):
        with pytest.raises(
            ValueError, match=r"scratchpad rows, budget is \d+"
        ):
            manual_tiling(PARAMS, 10000, 10000, 10000, 4, 4, 128)

    def test_single_buffer_doubles_manual_budget(self):
        """A tiling over half the accumulator is rejected double-buffered
        but accepted (and marked) with double_buffer=False."""
        with pytest.raises(ValueError, match="accumulator"):
            manual_tiling(PARAMS, 2048, 64, 2048, 33, 1, 1)
        t = manual_tiling(PARAMS, 2048, 64, 2048, 33, 1, 1, double_buffer=False)
        assert t.double_buffer is False
        assert fits_budgets(PARAMS, t)

    def test_single_buffer_still_bounded(self):
        with pytest.raises(ValueError, match="budget is 1024"):
            manual_tiling(PARAMS, 2048, 64, 2048, 65, 1, 1, double_buffer=False)


class TestPlannerMemoization:
    def test_same_args_return_cached_object(self):
        params = SoftwareParams.from_config(default_config())
        before = plan_matmul_tiling.cache_info().hits
        first = plan_matmul_tiling(params, 640, 640, 640)
        again = plan_matmul_tiling(params, 640, 640, 640)
        assert again is first  # lru_cache returned the same object
        assert plan_matmul_tiling.cache_info().hits > before

    def test_distinct_buffering_not_conflated(self):
        params = SoftwareParams.from_config(default_config())
        a = plan_matmul_tiling(params, 4096, 4096, 4096, double_buffer=True)
        b = plan_matmul_tiling(params, 4096, 4096, 4096, double_buffer=False)
        assert a is not b
        assert b.sp_rows_used() >= a.sp_rows_used()
