"""Unit and property tests for the tile-size heuristics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import default_config, GemminiConfig
from repro.core.generator import SoftwareParams
from repro.sw.tiling import MatmulTiling, manual_tiling, plan_matmul_tiling


PARAMS = SoftwareParams.from_config(default_config())


class TestMatmulTiling:
    def test_tile_extents(self):
        t = MatmulTiling(i_blocks=2, j_blocks=3, k_blocks=4, dim=16, m=100, k=200, n=300)
        assert t.tile_m == 32
        assert t.tile_n == 48
        assert t.tile_k == 64

    def test_outer_trip_counts(self):
        t = MatmulTiling(i_blocks=2, j_blocks=2, k_blocks=2, dim=16, m=100, k=64, n=64)
        assert t.outer_i == 4  # ceil(100/32)
        assert t.outer_k == 2
        assert t.outer_j == 2
        assert t.total_iterations == 16

    def test_clipped_edges(self):
        t = MatmulTiling(i_blocks=2, j_blocks=2, k_blocks=2, dim=16, m=40, k=40, n=40)
        m, k, n = t.clipped(t.outer_i - 1, t.outer_j - 1, t.outer_k - 1)
        assert m == 8  # 40 - 32
        assert k == 8
        assert n == 8

    def test_footprints(self):
        t = MatmulTiling(i_blocks=2, j_blocks=3, k_blocks=4, dim=16, m=64, k=128, n=96)
        assert t.sp_rows_used() == (2 * 4 + 4 * 3) * 16
        assert t.acc_rows_used() == 2 * 3 * 16

    def test_validation(self):
        with pytest.raises(ValueError):
            MatmulTiling(0, 1, 1, 16, 10, 10, 10)
        with pytest.raises(ValueError):
            MatmulTiling(1, 1, 1, 16, 0, 10, 10)


class TestPlanHeuristic:
    def test_small_matmul_single_tile(self):
        t = plan_matmul_tiling(PARAMS, 16, 16, 16)
        assert t.total_iterations == 1

    def test_fits_scratchpad_budget(self):
        t = plan_matmul_tiling(PARAMS, 4096, 4096, 4096)
        assert t.sp_rows_used() <= PARAMS.sp_rows // 2
        assert t.acc_rows_used() <= PARAMS.acc_rows // 2

    def test_never_exceeds_matrix_extent(self):
        t = plan_matmul_tiling(PARAMS, 20, 20, 20)
        assert t.i_blocks <= 2
        assert t.j_blocks <= 2
        assert t.k_blocks <= 2

    def test_maximises_utilisation(self):
        """The heuristic should leave no room to grow any dimension."""
        t = plan_matmul_tiling(PARAMS, 10000, 10000, 10000)
        budget_sp = PARAMS.sp_rows // 2
        budget_acc = PARAMS.acc_rows // 2
        for di, dj, dk in ((1, 0, 0), (0, 1, 0), (0, 0, 1)):
            sp = ((t.i_blocks + di) * (t.k_blocks + dk)
                  + (t.k_blocks + dk) * (t.j_blocks + dj)) * 16
            acc = (t.i_blocks + di) * (t.j_blocks + dj) * 16
            assert sp > budget_sp or acc > budget_acc

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            plan_matmul_tiling(PARAMS, 0, 4, 4)

    def test_tiny_scratchpad_rejected(self):
        cfg = GemminiConfig(
            sp_capacity_bytes=16 * 16 * 2,  # 2 rows only
            sp_banks=1,
            acc_capacity_bytes=16 * 64,
            acc_banks=1,
        )
        params = SoftwareParams.from_config(cfg)
        with pytest.raises(ValueError):
            plan_matmul_tiling(params, 64, 64, 64)

    def test_no_double_buffer_doubles_budget(self):
        small = plan_matmul_tiling(PARAMS, 8192, 8192, 8192, double_buffer=True)
        big = plan_matmul_tiling(PARAMS, 8192, 8192, 8192, double_buffer=False)
        assert big.sp_rows_used() >= small.sp_rows_used()

    def test_max_blocks_cap(self):
        t = plan_matmul_tiling(PARAMS, 8192, 8192, 8192, max_blocks=2)
        assert max(t.i_blocks, t.j_blocks, t.k_blocks) <= 2

    @given(
        st.integers(min_value=1, max_value=3000),
        st.integers(min_value=1, max_value=3000),
        st.integers(min_value=1, max_value=3000),
    )
    @settings(max_examples=40)
    def test_always_fits_and_covers(self, m, k, n):
        t = plan_matmul_tiling(PARAMS, m, k, n)
        assert t.sp_rows_used() <= PARAMS.sp_rows // 2
        assert t.acc_rows_used() <= PARAMS.acc_rows // 2
        # Outer loops cover the full extents.
        assert t.outer_i * t.tile_m >= m
        assert t.outer_j * t.tile_n >= n
        assert t.outer_k * t.tile_k >= k


class TestManualTiling:
    def test_accepts_fitting_tiles(self):
        t = manual_tiling(PARAMS, 256, 256, 256, 4, 4, 4)
        assert t.i_blocks == 4

    def test_rejects_oversized_tiles(self):
        with pytest.raises(ValueError):
            manual_tiling(PARAMS, 10000, 10000, 10000, 64, 64, 64)

    def test_rejects_acc_overflow(self):
        # Accumulator budget (default 64 KB -> 1024 rows, half = 512) caps
        # i*j at 32 blocks.
        with pytest.raises(ValueError):
            manual_tiling(PARAMS, 2048, 64, 2048, 16, 16, 1)
