"""Persistent schedule cache: keys, durability, dispatch, cross-process."""

import json
import subprocess
import sys

import pytest

from repro.core.config import default_config
from repro.soc.soc import make_soc
from repro.sw.kernels import TileKernels
from repro.sw.schedule_cache import (
    NULL_SCHEDULE_CACHE,
    ScheduleCache,
    ScheduleRecord,
    accel_config_hash,
    default_schedule_cache,
    schedule_key,
    set_default_schedule_cache,
)
from repro.sw.tiling import MatmulTiling, plan_matmul_tiling
from repro.core.generator import SoftwareParams


CFG = default_config()


def _record(m=64, k=64, n=64, i=2, j=2, kk=2) -> ScheduleRecord:
    return ScheduleRecord(
        key=schedule_key(CFG, m, k, n),
        tiling=MatmulTiling(i, j, kk, CFG.dim, m, k, n),
        tuned_cycles=100.0,
        greedy_cycles=120.0,
    )


class TestScheduleKey:
    def test_digest_is_stable(self):
        a = schedule_key(CFG, 64, 128, 32)
        b = schedule_key(CFG, 64, 128, 32)
        assert a == b
        assert a.digest == b.digest

    def test_shape_changes_digest(self):
        assert (
            schedule_key(CFG, 64, 128, 32).digest
            != schedule_key(CFG, 64, 128, 33).digest
        )

    def test_config_changes_digest(self):
        from dataclasses import replace

        other = replace(CFG, sp_capacity_bytes=CFG.sp_capacity_bytes * 2)
        assert schedule_key(CFG, 8, 8, 8) != schedule_key(other, 8, 8, 8)
        assert accel_config_hash(CFG) != accel_config_hash(other)

    def test_key_embeds_dtype(self):
        assert schedule_key(CFG, 8, 8, 8).dtype == "int8"


class TestScheduleCache:
    def test_put_then_lookup(self, tmp_path):
        cache = ScheduleCache(tmp_path / "s.jsonl")
        record = _record()
        cache.put(record)
        assert cache.lookup(record.key) == record.tiling
        assert cache.stats.lookups == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 0

    def test_miss_counts(self, tmp_path):
        cache = ScheduleCache(tmp_path / "s.jsonl")
        assert cache.lookup(schedule_key(CFG, 3, 3, 3)) is None
        assert cache.stats.lookups == 1
        assert cache.stats.misses == 1

    def test_get_is_uncounted(self, tmp_path):
        cache = ScheduleCache(tmp_path / "s.jsonl")
        record = cache.put(_record())
        assert cache.get(record.key) is not None
        assert cache.stats.lookups == 0

    def test_last_record_per_key_wins(self, tmp_path):
        path = tmp_path / "s.jsonl"
        ScheduleCache(path).put(_record(i=2, j=2, kk=2))
        ScheduleCache(path).put(_record(i=1, j=1, kk=4))
        fresh = ScheduleCache(path)
        assert len(fresh) == 1
        assert fresh.lookup(schedule_key(CFG, 64, 64, 64)).k_blocks == 4

    def test_survives_process_roundtrip_via_file(self, tmp_path):
        path = tmp_path / "s.jsonl"
        record = ScheduleCache(path).put(_record())
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 1
        data = json.loads(lines[0])
        assert data["digest"] == record.key.digest
        assert ScheduleCache(path).lookup(record.key) == record.tiling

    def test_corrupt_line_skipped_with_warning(self, tmp_path):
        path = tmp_path / "s.jsonl"
        cache = ScheduleCache(path)
        record = cache.put(_record())
        with path.open("a") as fh:
            fh.write("{truncated garbage\n")
        fresh = ScheduleCache(path)
        with pytest.warns(RuntimeWarning, match="corrupt line"):
            assert fresh.lookup(record.key) == record.tiling

    def test_put_updates_loaded_memory(self, tmp_path):
        cache = ScheduleCache(tmp_path / "s.jsonl")
        assert len(cache) == 0  # forces the load
        record = cache.put(_record())
        assert cache.lookup(record.key) == record.tiling

    def test_null_cache(self):
        record = _record()
        NULL_SCHEDULE_CACHE.put(record)
        assert NULL_SCHEDULE_CACHE.lookup(record.key) is None
        assert NULL_SCHEDULE_CACHE.stats.lookups == 0  # misses uncounted
        assert not NULL_SCHEDULE_CACHE
        assert bool(ScheduleCache("anywhere.jsonl"))


class TestAmbientDefault:
    def test_env_resolution_and_re_resolution(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULE_CACHE", str(tmp_path / "a.jsonl"))
        first = default_schedule_cache()
        assert first.path == tmp_path / "a.jsonl"
        assert default_schedule_cache() is first  # stable while env stable
        monkeypatch.setenv("REPRO_SCHEDULE_CACHE", str(tmp_path / "b.jsonl"))
        assert default_schedule_cache().path == tmp_path / "b.jsonl"

    def test_off_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULE_CACHE", "off")
        assert default_schedule_cache() is NULL_SCHEDULE_CACHE

    def test_override_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULE_CACHE", str(tmp_path / "env.jsonl"))
        mine = ScheduleCache(tmp_path / "mine.jsonl")
        previous = set_default_schedule_cache(mine)
        try:
            assert default_schedule_cache() is mine
        finally:
            set_default_schedule_cache(previous)


class TestDispatch:
    def test_miss_falls_back_to_greedy_and_never_writes(self, tmp_path):
        cache = ScheduleCache(tmp_path / "s.jsonl")
        kernels = TileKernels(make_soc(gemmini=CFG).tile, schedule_cache=cache)
        tiling = kernels.select_tiling(64, 64, 64)
        params = SoftwareParams.from_config(CFG)
        assert tiling == plan_matmul_tiling(params, 64, 64, 64)
        assert cache.stats.misses == 1
        assert not (tmp_path / "s.jsonl").exists()  # dispatch never tunes

    def test_hit_returns_cached_schedule(self, tmp_path):
        cache = ScheduleCache(tmp_path / "s.jsonl")
        record = cache.put(_record(i=1, j=1, kk=4))
        kernels = TileKernels(make_soc(gemmini=CFG).tile, schedule_cache=cache)
        assert kernels.select_tiling(64, 64, 64) == record.tiling
        assert cache.stats.hits == 1

    def test_kernels_use_ambient_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULE_CACHE", str(tmp_path / "amb.jsonl"))
        set_default_schedule_cache(None)
        kernels = TileKernels(make_soc(gemmini=CFG).tile)
        assert kernels.schedule_cache is default_schedule_cache()


class TestCrossProcess:
    def test_second_process_warm_starts_all_hits(self, tmp_path):
        """The acceptance contract: a process that only dispatches against a
        tuned cache sees hits == lookups."""
        path = tmp_path / "shared.jsonl"
        tune = (
            "import sys\n"
            "from repro.core.config import default_config\n"
            "from repro.sw.schedule_cache import ScheduleCache\n"
            "from repro.sw.tune import tune_matmul\n"
            "cache = ScheduleCache(sys.argv[1])\n"
            "r = tune_matmul(default_config(), 40, 24, 40, cache=cache,"
            " verify_top_k=2)\n"
            "print('cached' if r.cached else 'tuned')\n"
        )
        dispatch = (
            "import sys\n"
            "from repro.core.config import default_config\n"
            "from repro.soc.soc import make_soc\n"
            "from repro.sw.kernels import TileKernels\n"
            "from repro.sw.schedule_cache import ScheduleCache\n"
            "cache = ScheduleCache(sys.argv[1])\n"
            "kernels = TileKernels(make_soc(gemmini=default_config()).tile,"
            " schedule_cache=cache)\n"
            "kernels.select_tiling(40, 24, 40)\n"
            "print(cache.stats.lookups, cache.stats.hits)\n"
        )
        import os
        import pathlib

        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = str(pathlib.Path(repro.__file__).resolve().parents[1])
        first = subprocess.run(
            [sys.executable, "-c", tune, str(path)],
            capture_output=True, text=True, env=env, check=True,
        )
        assert first.stdout.strip() == "tuned"
        second = subprocess.run(
            [sys.executable, "-c", dispatch, str(path)],
            capture_output=True, text=True, env=env, check=True,
        )
        assert second.stdout.strip() == "1 1"  # hits == lookups
