"""Unit tests for the push-button compiler."""

from repro.core.config import default_config
from repro.core.generator import SoftwareParams
from repro.models import build_model
from repro.sw.compiler import Placement, compile_graph
from repro.sw.graph import Graph


PARAMS = SoftwareParams.from_config(default_config().with_im2col(True))


def conv_bn_relu_graph():
    g = Graph("t")
    g.add_input("x", (8, 8, 3))
    g.add_weight("w", (3, 3, 3, 16))
    g.add_node("Conv", "conv", ["x", "w"], "c",
               attrs={"kernel": 3, "padding": 1, "out_ch": 16})
    g.add_node("BatchNorm", "bn", ["c"], "b")
    g.add_node("Relu", "relu", ["b"], "y")
    g.mark_output("y")
    return g


class TestFusion:
    def test_bn_folded_into_conv(self):
        model = compile_graph(conv_bn_relu_graph(), PARAMS)
        assert len(model.plans) == 1
        plan = model.plans[0]
        assert plan.kind == "conv"
        assert plan.has_bias  # the folded BN becomes a bias
        assert plan.activation == "relu"
        assert plan.output == "y"

    def test_no_fusion_across_fanout(self):
        g = Graph("t")
        g.add_input("x", (8, 8, 3))
        g.add_weight("w", (1, 1, 3, 8))
        g.add_node("Conv", "conv", ["x", "w"], "c", attrs={"kernel": 1, "out_ch": 8})
        g.add_node("Relu", "relu", ["c"], "r")
        # 'c' also feeds an Add: fusing ReLU into the conv would corrupt it.
        g.add_node("Add", "add", ["c", "c"], "y")
        g.mark_output("y")
        model = compile_graph(g, PARAMS)
        kinds = [p.kind for p in model.plans]
        assert "resadd" in kinds
        conv_plan = next(p for p in model.plans if p.kind == "conv")
        assert conv_plan.activation == "none"

    def test_maxpool_fused_into_conv(self):
        g = Graph("t")
        g.add_input("x", (8, 8, 3))
        g.add_weight("w", (3, 3, 3, 16))
        g.add_node("Conv", "conv", ["x", "w"], "c",
                   attrs={"kernel": 3, "padding": 1, "out_ch": 16})
        g.add_node("MaxPool", "pool", ["c"], "y", attrs={"kernel": 2, "stride": 2})
        g.mark_output("y")
        model = compile_graph(g, PARAMS)
        assert len(model.plans) == 1
        assert model.plans[0].pool is not None
        assert model.plans[0].output == "y"

    def test_padded_maxpool_not_fused(self):
        g = Graph("t")
        g.add_input("x", (8, 8, 3))
        g.add_weight("w", (3, 3, 3, 16))
        g.add_node("Conv", "conv", ["x", "w"], "c",
                   attrs={"kernel": 3, "padding": 1, "out_ch": 16})
        g.add_node("MaxPool", "pool", ["c"], "y",
                   attrs={"kernel": 3, "stride": 2, "padding": 1})
        g.mark_output("y")
        model = compile_graph(g, PARAMS)
        assert len(model.plans) == 2
        assert model.plans[1].kind == "pool"


class TestPlacement:
    def test_matmul_on_accel(self):
        g = Graph("t")
        g.add_input("x", (4, 64))
        g.add_weight("w", (64, 32))
        g.add_node("Gemm", "fc", ["x", "w"], "y")
        g.mark_output("y")
        model = compile_graph(g, PARAMS)
        assert model.plans[0].placement is Placement.ACCEL
        assert model.plans[0].m == 4 and model.plans[0].k == 64 and model.plans[0].n == 32

    def test_softmax_on_cpu(self):
        g = Graph("t")
        g.add_input("x", (4, 64))
        g.add_node("Softmax", "sm", ["x"], "y", attrs={"batch": 12})
        g.mark_output("y")
        model = compile_graph(g, PARAMS)
        plan = model.plans[0]
        assert plan.placement is Placement.CPU
        assert plan.cpu_kind == "softmax"
        assert plan.elements == 4 * 64 * 12  # batch multiplier honoured

    def test_views_are_noops(self):
        g = Graph("t")
        g.add_input("x", (4, 6))
        g.add_node("Reshape", "r", ["x"], "y", attrs={"shape": [6, 4]})
        g.mark_output("y")
        model = compile_graph(g, PARAMS)
        assert model.plans[0].kind == "noop"

    def test_matmul_with_activation_operand(self):
        """BERT-style A@B where B is not a weight keeps both inputs."""
        g = Graph("t")
        g.add_input("a", (4, 8))
        g.add_input("b", (8, 4))
        g.add_node("MatMul", "mm", ["a", "b"], "y")
        g.mark_output("y")
        model = compile_graph(g, PARAMS)
        plan = model.plans[0]
        assert plan.weight is None
        assert plan.inputs == ("a", "b")


class TestModelCompilation:
    def test_resnet50_plan_mix(self):
        model = compile_graph(build_model("resnet50"), PARAMS)
        kinds = {}
        for plan in model.plans:
            kinds[plan.kind] = kinds.get(plan.kind, 0) + 1
        assert kinds["conv"] == 53
        assert kinds["resadd"] == 16
        assert kinds["matmul"] == 1

    def test_mobilenet_uses_dwconv(self):
        model = compile_graph(build_model("mobilenetv2"), PARAMS)
        kinds = [p.kind for p in model.plans]
        assert kinds.count("dwconv") == 17

    def test_bert_cpu_ops(self):
        model = compile_graph(build_model("bert", seq=32), PARAMS)
        cpu_kinds = [p.cpu_kind for p in model.cpu_plans() if p.kind == "cpu_op"]
        assert cpu_kinds.count("softmax") == 12
        assert cpu_kinds.count("gelu") == 12
        assert cpu_kinds.count("layernorm") == 24

    def test_im2col_scratch_only_without_unit(self):
        params_no_unit = SoftwareParams.from_config(default_config())
        with_unit = compile_graph(build_model("alexnet"), PARAMS)
        without_unit = compile_graph(build_model("alexnet"), params_no_unit)
        assert with_unit.im2col_scratch_bytes == 0
        assert without_unit.im2col_scratch_bytes > 0

    def test_total_macs_match_graph(self):
        g = build_model("squeezenet")
        model = compile_graph(g, PARAMS)
        assert model.total_macs == g.total_macs()

    def test_summary_text(self):
        model = compile_graph(build_model("alexnet"), PARAMS)
        text = model.summary()
        assert "alexnet" in text
        assert "accel:conv" in text
