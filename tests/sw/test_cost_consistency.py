"""Cost-model consistency: macro analytic costs vs ISA-level execution.

DESIGN.md commits to one cost model across both simulation granularities:
the closed-form ``SpatialArrayModel.matmul_cost`` used by the macro kernels
must agree with the cycles measured when the same matmul executes
instruction by instruction through the ISA-level simulator's execute unit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accelerator import Accelerator
from repro.core.config import Dataflow, GemminiConfig
from repro.core.spatial_array import SpatialArrayModel
from repro.sw.lowlevel import GemminiProgramBuilder


def small_cfg():
    return GemminiConfig(
        mesh_rows=4, mesh_cols=4, tile_rows=1, tile_cols=1,
        sp_capacity_bytes=4 * 4 * 1024, sp_banks=2,
        acc_capacity_bytes=4 * 16 * 256, acc_banks=2,
    )


def isa_exec_busy_cycles(m, k, n):
    """Execute-unit busy time of an ISA-level blocked matmul."""
    cfg = small_cfg()
    accel = Accelerator(cfg)
    rng = np.random.default_rng(1)
    a = rng.integers(-4, 4, size=(m, k)).astype(np.int8)
    b = rng.integers(-4, 4, size=(k, n)).astype(np.int8)
    accel.host.write_matrix(0x10000, a, k)
    accel.host.write_matrix(0x20000, b, n)
    builder = GemminiProgramBuilder(cfg)
    builder.tiled_matmul_auto(0x10000, 0x20000, 0x30000, m, k, n)
    accel.run_program(builder.build())
    return accel.controller.units["exec"].busy_time


class TestCostConsistency:
    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=20)
    def test_analytic_matches_isa_compute_cycles(self, m, k, n):
        """Analytic compute cycles == ISA execute-unit busy time (minus the
        per-instruction issue costs the analytic model excludes)."""
        model = SpatialArrayModel(small_cfg())
        cost = model.matmul_cost(m, k, n, Dataflow.WS)

        busy = isa_exec_busy_cycles(m, k, n)
        dim = 4
        mb = -(-m // dim)
        kb = -(-k // dim)
        nb = -(-n // dim)
        # The ISA stream adds 1-cycle PRELOADs and 4 CONFIGs
        # (config_ex, config_ld for A, config_ld for B, config_st).
        preload_overhead = mb * kb * nb * 1 + 4
        assert busy == pytest.approx(cost.compute_cycles + preload_overhead, abs=1.0)

    def test_single_block_exact(self):
        model = SpatialArrayModel(small_cfg())
        cost = model.matmul_cost(4, 4, 4, Dataflow.WS)
        busy = isa_exec_busy_cycles(4, 4, 4)
        assert busy == cost.compute_cycles + 1 + 4  # 1 preload + 4 configs

    def test_macro_kernel_uses_same_model(self):
        """The macro kernel's exec op cycles come from the same closed form."""
        from repro.core.config import default_config
        from repro.soc.soc import make_soc
        from repro.sw.kernels import TileKernels

        soc = make_soc(gemmini=default_config().with_im2col(True))
        soc.tile.vm.alloc(1 << 20, "arena")
        kernels = TileKernels(soc.tile)
        ops = list(kernels.matmul_ops(0x1000_0000, 0x1001_0000, 0x1002_0000, 64, 64, 64))
        exec_ops = [op for op in ops if op.unit == "exec"]
        model = SpatialArrayModel(soc.tile.accel.config)
        expected = model.matmul_cost(64, 64, 64, Dataflow.WS).total
        assert exec_ops[0].cycles == pytest.approx(expected + kernels.issue_overhead)
