"""Auto-tuner: search validity, the never-worse contract, determinism."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generator import SoftwareParams
from repro.soc.soc import make_soc
from repro.sw.kernels import TileKernels
from repro.sw.schedule_cache import NULL_SCHEDULE_CACHE, ScheduleCache
from repro.sw.tiling import fits_budgets, plan_matmul_tiling
from repro.sw.tune import (
    enumerate_tilings,
    estimate_cycles,
    simulate_tiling_cycles,
    tune_matmul,
)


# Module-level (not the function-scoped fixture): hypothesis resets
# function fixtures between examples and flags their use in @given tests.
from repro.core.config import GemminiConfig

SMALL = GemminiConfig(
    mesh_rows=4,
    mesh_cols=4,
    tile_rows=1,
    tile_cols=1,
    sp_capacity_bytes=4 * 4 * 256,
    sp_banks=2,
    acc_capacity_bytes=4 * 16 * 64,
    acc_banks=2,
)
PARAMS = SoftwareParams.from_config(SMALL)


dims = st.integers(min_value=1, max_value=48)


class TestEnumeration:
    @given(dims, dims, dims)
    def test_all_candidates_fit_budgets_and_cover(self, m, k, n):
        params = PARAMS
        candidates = enumerate_tilings(params, m, k, n)
        assert candidates, "search space must never be empty"
        for t in candidates:
            assert fits_budgets(params, t)
            assert t.outer_i * t.tile_m >= m
            assert t.outer_j * t.tile_n >= n
            assert t.outer_k * t.tile_k >= k

    @given(dims, dims, dims)
    def test_greedy_plan_is_first_candidate(self, m, k, n):
        params = PARAMS
        candidates = enumerate_tilings(params, m, k, n)
        assert candidates[0] == plan_matmul_tiling(params, m, k, n)

    @given(dims, dims, dims)
    def test_no_duplicate_candidates(self, m, k, n):
        params = PARAMS
        candidates = enumerate_tilings(params, m, k, n)
        idents = [
            (t.i_blocks, t.j_blocks, t.k_blocks, t.loop_order, t.double_buffer)
            for t in candidates
        ]
        assert len(idents) == len(set(idents))

    def test_jik_skipped_when_degenerate(self):
        # A single output tile: every jik stream equals its ijk twin.
        for t in enumerate_tilings(PARAMS, 4, 4, 4):
            assert t.loop_order == "ijk"


class TestScoring:
    def test_estimate_is_deterministic(self):
        params = PARAMS
        t = plan_matmul_tiling(params, 32, 32, 32)
        assert estimate_cycles(SMALL, t) == estimate_cycles(SMALL, t)

    def test_single_buffer_scores_worse_overlap(self):
        params = PARAMS
        t = plan_matmul_tiling(params, 32, 32, 32)
        single = t.__class__(**{**t.to_dict(), "double_buffer": False})
        assert estimate_cycles(SMALL, single) >= estimate_cycles(
            SMALL, t
        )


class TestNeverWorse:
    @settings(max_examples=10)
    @given(dims, dims, dims)
    def test_tuned_never_costs_more_than_greedy(self, m, k, n):
        result = tune_matmul(
            SMALL, m, k, n, cache=NULL_SCHEDULE_CACHE, verify_top_k=2
        )
        assert result.tuned_cycles <= result.greedy_cycles
        assert fits_budgets(PARAMS, result.best)

    def test_verify_top_zero_degenerates_to_greedy(self):
        result = tune_matmul(
            SMALL, 24, 24, 24, cache=NULL_SCHEDULE_CACHE, verify_top_k=0
        )
        assert result.best == result.greedy
        assert result.tuned_cycles == result.greedy_cycles


class TestTuneCaching:
    def test_second_tune_serves_from_cache(self, tmp_path):
        cache = ScheduleCache(tmp_path / "s.jsonl")
        first = tune_matmul(SMALL, 20, 20, 20, cache=cache, verify_top_k=2)
        second = tune_matmul(SMALL, 20, 20, 20, cache=cache, verify_top_k=2)
        assert not first.cached
        assert second.cached
        assert second.best == first.best
        assert second.tuned_cycles == first.tuned_cycles

    def test_force_retunes(self, tmp_path):
        cache = ScheduleCache(tmp_path / "s.jsonl")
        tune_matmul(SMALL, 20, 20, 20, cache=cache, verify_top_k=2)
        again = tune_matmul(
            SMALL, 20, 20, 20, cache=cache, verify_top_k=2, force=True
        )
        assert not again.cached


class TestDeterminism:
    def test_same_cache_state_same_schedule_and_cycles(self, tmp_path):
        """Acceptance: with identical cache state, two independent dispatch+
        simulate passes produce bitwise-identical schedules and cycles."""
        path = tmp_path / "s.jsonl"
        tune_matmul(SMALL, 40, 24, 40, cache=ScheduleCache(path),
                    verify_top_k=3)

        def run_once():
            cache = ScheduleCache(path)  # fresh instance, fresh load
            soc = make_soc(gemmini=SMALL)
            kernels = TileKernels(soc.tile, schedule_cache=cache)
            tiling = kernels.select_tiling(40, 24, 40)
            vm = soc.tile.vm
            result = kernels.run_matmul(
                vm.alloc(40 * 24, "A"), vm.alloc(24 * 40, "B"),
                vm.alloc(40 * 40, "C"), 40, 24, 40, tiling=tiling,
            )
            return tiling.to_dict(), result.cycles

        first, second = run_once(), run_once()
        assert first == second

    def test_simulation_is_reproducible(self):
        params = PARAMS
        t = plan_matmul_tiling(params, 28, 28, 28)
        assert simulate_tiling_cycles(SMALL, t) == simulate_tiling_cycles(
            SMALL, t
        )
