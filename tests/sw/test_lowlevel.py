"""Tests for the low-level programming interface (gemmini.h analogue)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accelerator import Accelerator
from repro.core.config import GemminiConfig
from repro.core.isa import Funct
from repro.sw.lowlevel import GemminiProgramBuilder


def small_cfg():
    return GemminiConfig(
        mesh_rows=4, mesh_cols=4, tile_rows=1, tile_cols=1,
        sp_capacity_bytes=4 * 4 * 256, sp_banks=2,
        acc_capacity_bytes=4 * 16 * 64, acc_banks=2,
    )


class TestBuilder:
    def test_chaining(self):
        b = GemminiProgramBuilder(small_cfg())
        b.config_ex(dataflow_ws=True).config_ld(stride_bytes=4).fence()
        assert len(b) == 3
        assert b.build()[0].funct is Funct.CONFIG

    def test_build_returns_copy(self):
        b = GemminiProgramBuilder(small_cfg())
        b.fence()
        program = b.build()
        b.flush()
        assert len(program) == 1


class TestTiledMatmulAuto:
    def run_matmul(self, m, k, n, seed=0):
        cfg = small_cfg()
        accel = Accelerator(cfg)
        rng = np.random.default_rng(seed)
        a = rng.integers(-6, 6, size=(m, k)).astype(np.int8)
        b = rng.integers(-6, 6, size=(k, n)).astype(np.int8)
        accel.host.write_matrix(0x10000, a, k)
        accel.host.write_matrix(0x20000, b, n)
        builder = GemminiProgramBuilder(cfg)
        builder.tiled_matmul_auto(0x10000, 0x20000, 0x30000, m, k, n)
        accel.run_program(builder.build())
        out = accel.host.read_matrix(0x30000, m, n, n, np.int8)
        expected = np.clip(a.astype(np.int32) @ b.astype(np.int32), -128, 127)
        return out, expected.astype(np.int8)

    def test_single_block(self):
        out, expected = self.run_matmul(4, 4, 4)
        assert (out == expected).all()

    def test_multi_block_square(self):
        out, expected = self.run_matmul(8, 8, 8)
        assert (out == expected).all()

    def test_k_accumulation(self):
        out, expected = self.run_matmul(4, 16, 4)
        assert (out == expected).all()

    def test_ragged_dimensions(self):
        out, expected = self.run_matmul(6, 7, 5)
        assert (out == expected).all()

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=15)
    def test_arbitrary_shapes_match_numpy(self, m, k, n, seed):
        out, expected = self.run_matmul(m, k, n, seed)
        assert (out == expected).all()

    def test_oversized_operands_rejected(self):
        builder = GemminiProgramBuilder(small_cfg())
        with pytest.raises(ValueError):
            builder.tiled_matmul_auto(0, 0, 0, 4096, 4096, 4096)

    def test_relu_activation(self):
        cfg = small_cfg()
        accel = Accelerator(cfg)
        a = -np.eye(4, dtype=np.int8) * 5
        b = np.eye(4, dtype=np.int8)
        accel.host.write_matrix(0x10000, a, 4)
        accel.host.write_matrix(0x20000, b, 4)
        builder = GemminiProgramBuilder(cfg)
        builder.tiled_matmul_auto(0x10000, 0x20000, 0x30000, 4, 4, 4, activation=1)
        accel.run_program(builder.build())
        out = accel.host.read_matrix(0x30000, 4, 4, 4, np.int8)
        assert (out >= 0).all()
