"""Unit tests for the graph IR and shape inference."""

import pytest

from repro.sw.graph import Graph, GraphError, Node, TensorSpec


def simple_conv_graph():
    g = Graph("t")
    g.add_input("x", (8, 8, 3))
    g.add_weight("w", (3, 3, 3, 16))
    g.add_node("Conv", "conv", ["x", "w"], "y",
               attrs={"kernel": 3, "stride": 1, "padding": 1, "out_ch": 16})
    g.mark_output("y")
    return g


class TestTensorSpec:
    def test_elements(self):
        assert TensorSpec("t", (2, 3, 4)).elements == 24

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            TensorSpec("t", (2, 0))

    def test_needs_name(self):
        with pytest.raises(ValueError):
            TensorSpec("", (1,))


class TestNode:
    def test_unsupported_op(self):
        with pytest.raises(ValueError):
            Node("n", "Softplus", ["x"], ["y"])


class TestShapeInference:
    def test_conv_same_padding(self):
        g = simple_conv_graph()
        assert g.tensor("y").shape == (8, 8, 16)

    def test_conv_stride(self):
        g = Graph("t")
        g.add_input("x", (9, 9, 4))
        g.add_weight("w", (3, 3, 4, 8))
        g.add_node("Conv", "c", ["x", "w"], "y",
                   attrs={"kernel": 3, "stride": 2, "out_ch": 8})
        assert g.tensor("y").shape == (4, 4, 8)

    def test_depthwise_keeps_channels(self):
        g = Graph("t")
        g.add_input("x", (8, 8, 12))
        g.add_weight("w", (3, 3, 12))
        g.add_node("DepthwiseConv", "dw", ["x", "w"], "y",
                   attrs={"kernel": 3, "padding": 1})
        assert g.tensor("y").shape == (8, 8, 12)

    def test_gemm_shapes(self):
        g = Graph("t")
        g.add_input("x", (4, 10))
        g.add_weight("w", (10, 7))
        g.add_node("Gemm", "fc", ["x", "w"], "y")
        assert g.tensor("y").shape == (4, 7)

    def test_gemm_mismatch_rejected(self):
        g = Graph("t")
        g.add_input("x", (4, 10))
        g.add_weight("w", (11, 7))
        with pytest.raises(GraphError):
            g.add_node("Gemm", "fc", ["x", "w"], "y")

    def test_add_requires_same_shape(self):
        g = Graph("t")
        g.add_input("a", (4, 4, 8))
        g.add_input("b", (4, 4, 9))
        with pytest.raises(GraphError):
            g.add_node("Add", "add", ["a", "b"], "y")

    def test_pool_shapes(self):
        g = Graph("t")
        g.add_input("x", (8, 8, 4))
        g.add_node("MaxPool", "p", ["x"], "y", attrs={"kernel": 2, "stride": 2})
        assert g.tensor("y").shape == (4, 4, 4)

    def test_global_pool(self):
        g = Graph("t")
        g.add_input("x", (7, 7, 64))
        g.add_node("GlobalAveragePool", "p", ["x"], "y")
        assert g.tensor("y").shape == (1, 1, 64)

    def test_flatten(self):
        g = Graph("t")
        g.add_input("x", (2, 3, 4))
        g.add_node("Flatten", "f", ["x"], "y")
        assert g.tensor("y").shape == (1, 24)

    def test_reshape_preserves_elements(self):
        g = Graph("t")
        g.add_input("x", (4, 6))
        g.add_node("Reshape", "r", ["x"], "y", attrs={"shape": [8, 3]})
        assert g.tensor("y").shape == (8, 3)

    def test_reshape_bad_count(self):
        g = Graph("t")
        g.add_input("x", (4, 6))
        with pytest.raises(GraphError):
            g.add_node("Reshape", "r", ["x"], "y", attrs={"shape": [5, 5]})

    def test_concat_channel_axis(self):
        g = Graph("t")
        g.add_input("a", (4, 4, 8))
        g.add_input("b", (4, 4, 16))
        g.add_node("Concat", "c", ["a", "b"], "y", attrs={"axis": -1})
        assert g.tensor("y").shape == (4, 4, 24)

    def test_concat_mismatched_rejected(self):
        g = Graph("t")
        g.add_input("a", (4, 4, 8))
        g.add_input("b", (5, 4, 8))
        with pytest.raises(GraphError):
            g.add_node("Concat", "c", ["a", "b"], "y", attrs={"axis": -1})

    def test_unknown_input_rejected(self):
        g = Graph("t")
        with pytest.raises(GraphError):
            g.add_node("Relu", "r", ["ghost"], "y")

    def test_duplicate_tensor_rejected(self):
        g = Graph("t")
        g.add_input("x", (4,))
        with pytest.raises(GraphError):
            g.add_input("x", (4,))


class TestAccounting:
    def test_conv_macs(self):
        g = simple_conv_graph()
        node = g.nodes[0]
        assert g.node_macs(node) == 8 * 8 * 16 * 9 * 3

    def test_gemm_macs(self):
        g = Graph("t")
        g.add_input("x", (4, 10))
        g.add_weight("w", (10, 7))
        g.add_node("Gemm", "fc", ["x", "w"], "y")
        assert g.total_macs() == 4 * 10 * 7

    def test_pointwise_ops_zero_macs(self):
        g = Graph("t")
        g.add_input("x", (4, 4, 8))
        g.add_node("Relu", "r", ["x"], "y")
        assert g.total_macs() == 0

    def test_weight_bytes(self):
        g = Graph("t")
        g.add_input("x", (4, 10))
        g.add_weight("w", (10, 7), dtype="int8")
        g.add_weight("b", (7,), dtype="int32")
        g.add_node("Gemm", "fc", ["x", "w"], "y")
        assert g.total_weight_bytes() == 70 + 28

    def test_op_counts(self):
        g = simple_conv_graph()
        assert g.op_counts() == {"Conv": 1}

    def test_validate_passes(self):
        simple_conv_graph().validate()

    def test_validate_catches_missing_output(self):
        g = Graph("t")
        g.add_input("x", (4,))
        g.outputs.append("nonexistent")
        with pytest.raises(GraphError):
            g.validate()
