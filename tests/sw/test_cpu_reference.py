"""Tests for the CPU-only reference cost walk."""

import pytest

from repro.models import build_model
from repro.soc.cpu import BOOM, ROCKET
from repro.sw.cpu_reference import cpu_graph_cycles, cpu_node_cycles
from repro.sw.graph import Graph


class TestNodeCosts:
    def test_conv_cost(self):
        g = Graph("t")
        g.add_input("x", (8, 8, 3))
        g.add_weight("w", (3, 3, 3, 4))
        g.add_node("Conv", "c", ["x", "w"], "y", attrs={"kernel": 3, "out_ch": 4, "padding": 1})
        node = g.nodes[0]
        assert cpu_node_cycles(g, node, ROCKET) == ROCKET.conv_cycles(g.node_macs(node))

    def test_softmax_batch_attr(self):
        g = Graph("t")
        g.add_input("x", (4, 8))
        g.add_node("Softmax", "s", ["x"], "y", attrs={"batch": 12})
        assert cpu_node_cycles(g, g.nodes[0], ROCKET) == ROCKET.softmax_cycles(4 * 8 * 12)

    def test_views_free(self):
        g = Graph("t")
        g.add_input("x", (4, 8))
        g.add_node("Flatten", "f", ["x"], "y")
        assert cpu_node_cycles(g, g.nodes[0], ROCKET) == 0.0

    def test_pool_uses_input_elements(self):
        g = Graph("t")
        g.add_input("x", (8, 8, 4))
        g.add_node("MaxPool", "p", ["x"], "y", attrs={"kernel": 2, "stride": 2})
        assert cpu_node_cycles(g, g.nodes[0], ROCKET) == ROCKET.pool_cycles(8 * 8 * 4)


class TestGraphCosts:
    def test_resnet50_baseline_anchor(self):
        """Calibrated so the accelerator's ResNet50 speedup lands near the
        paper's 2,670x (see EXPERIMENTS.md): the Rocket baseline is ~108 G
        cycles at 224x224."""
        cycles = cpu_graph_cycles(build_model("resnet50"), ROCKET)
        assert 95e9 <= cycles <= 120e9

    def test_boom_faster(self):
        g = build_model("squeezenet", input_hw=64)
        assert cpu_graph_cycles(g, BOOM) < cpu_graph_cycles(g, ROCKET)

    def test_conv_ratio_anchor(self):
        """Full-CNN Rocket/BOOM ratio approximates the paper's 2.36x."""
        g = build_model("resnet50", input_hw=112)
        ratio = cpu_graph_cycles(g, ROCKET) / cpu_graph_cycles(g, BOOM)
        assert ratio == pytest.approx(2.36, rel=0.05)

    def test_dispatch_charged_per_node(self):
        g = Graph("t")
        g.add_input("x", (4, 8))
        g.add_node("Relu", "r", ["x"], "y")
        total = cpu_graph_cycles(g, ROCKET)
        assert total == ROCKET.elementwise_cycles(32) + ROCKET.dispatch_cycles

    def test_bert_dominated_by_matmul(self):
        g = build_model("bert", seq=64, layers=2)
        matmul_macs = g.total_macs()
        total = cpu_graph_cycles(g, ROCKET)
        assert total > ROCKET.matmul_cycles(matmul_macs)
