"""Integration tests: compiled models executing on SoC tiles."""

import pytest

from repro.core.config import default_config
from repro.core.generator import SoftwareParams
from repro.sim.engine import lockstep_merge
from repro.soc.os_model import OSConfig
from repro.soc.soc import make_soc
from repro.sw.compiler import compile_graph
from repro.sw.graph import Graph
from repro.sw.runtime import Runtime, run_model_on_tile


CFG = default_config().with_im2col(True)
PARAMS = SoftwareParams.from_config(CFG)


def tiny_cnn(hw=16):
    g = Graph("tiny")
    g.add_input("x", (hw, hw, 3))
    g.add_weight("w1", (3, 3, 3, 8))
    g.add_node("Conv", "c1", ["x", "w1"], "a",
               attrs={"kernel": 3, "padding": 1, "out_ch": 8})
    g.add_node("Relu", "r1", ["a"], "b")
    g.add_weight("w2", (1, 1, 8, 8))
    g.add_node("Conv", "c2", ["b", "w2"], "c", attrs={"kernel": 1, "out_ch": 8})
    g.add_node("Add", "res", ["c", "b"], "d")
    g.mark_output("d")
    return g


class TestAllocation:
    def test_all_tensors_allocated(self):
        soc = make_soc(gemmini=CFG)
        model = compile_graph(tiny_cnn(), PARAMS)
        rt = Runtime(soc.tile, model)
        for name in model.tensor_bytes:
            assert rt.addr(name) > 0
        for name in model.weight_bytes:
            assert rt.addr(name) > 0

    def test_unknown_tensor_raises(self):
        soc = make_soc(gemmini=CFG)
        rt = Runtime(soc.tile, compile_graph(tiny_cnn(), PARAMS))
        with pytest.raises(KeyError):
            rt.addr("ghost")

    def test_view_aliases_input(self):
        g = Graph("v")
        g.add_input("x", (4, 6))
        g.add_node("Reshape", "r", ["x"], "y", attrs={"shape": [6, 4]})
        g.add_weight("w", (4, 2))
        g.add_node("Gemm", "fc", ["y", "w"], "z")
        g.mark_output("z")
        soc = make_soc(gemmini=CFG)
        rt = Runtime(soc.tile, compile_graph(g, PARAMS))
        assert rt.addr("y") == rt.addr("x")

    def test_concat_inputs_alias_slices(self):
        g = Graph("c")
        g.add_input("x", (4, 4, 8))
        g.add_weight("wl", (1, 1, 8, 8))
        g.add_weight("wr", (1, 1, 8, 16))
        g.add_node("Conv", "left", ["x", "wl"], "l", attrs={"kernel": 1, "out_ch": 8})
        g.add_node("Conv", "right", ["x", "wr"], "r", attrs={"kernel": 1, "out_ch": 16})
        g.add_node("Concat", "cat", ["l", "r"], "y", attrs={"axis": -1})
        g.mark_output("y")
        soc = make_soc(gemmini=CFG)
        model = compile_graph(g, PARAMS)
        rt = Runtime(soc.tile, model)
        base = rt.addr("y")
        assert rt.addr("l") == base
        assert rt.addr("r") == base + model.tensor_bytes["l"]

    def test_im2col_scratch_allocated_when_needed(self):
        cfg = default_config()  # no im2col unit
        soc = make_soc(gemmini=cfg)
        model = compile_graph(tiny_cnn(), SoftwareParams.from_config(cfg))
        rt = Runtime(soc.tile, model, use_accel_im2col=False)
        assert rt._im2col_vaddr is not None

    def test_im2col_request_without_unit_rejected(self):
        cfg = default_config()
        soc = make_soc(gemmini=cfg)
        model = compile_graph(tiny_cnn(), SoftwareParams.from_config(cfg))
        with pytest.raises(ValueError):
            Runtime(soc.tile, model, use_accel_im2col=True)


class TestExecution:
    def test_tiny_model_runs(self):
        soc = make_soc(gemmini=CFG)
        result = run_model_on_tile(soc.tile, compile_graph(tiny_cnn(), PARAMS))
        assert result.total_cycles > 0
        assert len(result.layers) == 3  # conv+relu fused, conv, resadd
        assert result.macro_ops > 0

    def test_layer_kinds_recorded(self):
        soc = make_soc(gemmini=CFG)
        result = run_model_on_tile(soc.tile, compile_graph(tiny_cnn(), PARAMS))
        kinds = [layer.kind for layer in result.layers]
        assert kinds == ["conv", "conv", "resadd"]

    def test_marginal_cycles_sum_to_total(self):
        soc = make_soc(gemmini=CFG)
        result = run_model_on_tile(soc.tile, compile_graph(tiny_cnn(), PARAMS))
        assert sum(layer.cycles for layer in result.layers) == pytest.approx(
            result.total_cycles, rel=1e-6
        )

    def test_fps_computation(self):
        soc = make_soc(gemmini=CFG)
        result = run_model_on_tile(soc.tile, compile_graph(tiny_cnn(), PARAMS))
        assert result.fps(1.0) == pytest.approx(1e9 / result.total_cycles)

    def test_sync_per_layer_not_faster(self):
        model = compile_graph(tiny_cnn(32), PARAMS)
        free = run_model_on_tile(make_soc(gemmini=CFG).tile, model)
        soc2 = make_soc(gemmini=CFG)
        synced = Runtime(soc2.tile, compile_graph(tiny_cnn(32), PARAMS),
                         sync_per_layer=True).run()
        assert synced.total_cycles >= free.total_cycles * 0.99

    def test_cpu_layer_advances_clock(self):
        g = Graph("s")
        g.add_input("x", (8, 64))
        g.add_node("Softmax", "sm", ["x"], "y")
        g.mark_output("y")
        soc = make_soc(gemmini=CFG)
        result = run_model_on_tile(soc.tile, compile_graph(g, PARAMS))
        expected = soc.tile.cpu.softmax_cycles(8 * 64)
        assert result.total_cycles >= expected

    def test_os_context_switches_flush_tlb(self):
        os_cfg = OSConfig(enabled=True, quantum_cycles=500, context_switch_cycles=100)
        soc = make_soc(gemmini=CFG, os=os_cfg)
        model = compile_graph(tiny_cnn(32), PARAMS)
        run_model_on_tile(soc.tile, model)
        assert soc.tile.os.stats.value("context_switches") > 0
        assert soc.tile.accel.xlat.stats.value("flushes") > 0

    def test_layer_lookup(self):
        soc = make_soc(gemmini=CFG)
        result = run_model_on_tile(soc.tile, compile_graph(tiny_cnn(), PARAMS))
        assert result.layer("res").kind == "resadd"
        with pytest.raises(KeyError):
            result.layer("nope")


class TestMultiCore:
    def test_dual_core_lockstep(self):
        soc = make_soc(gemmini=CFG, num_tiles=2)
        runtimes = []
        for tile in soc.tiles:
            runtimes.append(Runtime(tile, compile_graph(tiny_cnn(32), PARAMS)))
        ends = lockstep_merge([rt.run_generator() for rt in runtimes])
        assert len(ends) == 2
        assert all(end > 0 for end in ends)
        assert runtimes[0].result.total_cycles > 0
        assert runtimes[1].result.total_cycles > 0

    def test_contention_slows_execution(self):
        solo = make_soc(gemmini=CFG)
        solo_result = run_model_on_tile(solo.tile, compile_graph(tiny_cnn(32), PARAMS))

        duo = make_soc(gemmini=CFG, num_tiles=2)
        runtimes = [
            Runtime(tile, compile_graph(tiny_cnn(32), PARAMS)) for tile in duo.tiles
        ]
        ends = lockstep_merge([rt.run_generator() for rt in runtimes])
        assert max(ends) >= solo_result.total_cycles

    def test_small_cnn_end_to_end_sharing(self):
        """Both tiles finish and the shared L2 saw traffic from each."""
        soc = make_soc(gemmini=CFG, num_tiles=2)
        runtimes = [
            Runtime(tile, compile_graph(tiny_cnn(16), PARAMS)) for tile in soc.tiles
        ]
        lockstep_merge([rt.run_generator() for rt in runtimes])
        stats = soc.mem.l2.stats
        g0 = stats.value("hits_gemmini0") + stats.value("misses_gemmini0")
        g1 = stats.value("hits_gemmini1") + stats.value("misses_gemmini1")
        assert g0 > 0 and g1 > 0


class TestLayerLookup:
    def _result(self, names):
        from repro.sw.runtime import LayerStats, RunResult

        layers = [
            LayerStats(name=n, kind="conv", placement="accel", start_time=i, end_time=i + 1)
            for i, n in enumerate(names)
        ]
        return RunResult(model="m", tile="t", total_cycles=float(len(names)), layers=layers)

    def test_lookup_uses_index(self):
        result = self._result([f"layer{i}" for i in range(50)])
        assert result.layer("layer31").start_time == 31
        assert result._layer_index is not None  # built lazily on first call
        assert result.layer("layer7") is result.layers[7]

    def test_unknown_layer_raises_keyerror(self):
        result = self._result(["a", "b"])
        with pytest.raises(KeyError):
            result.layer("ghost")

    def test_duplicate_layer_names_raise(self):
        """A linear scan would silently return the first match; the index
        refuses to shadow."""
        result = self._result(["conv1", "conv2", "conv1"])
        with pytest.raises(ValueError, match="duplicate layer name"):
            result.layer("conv2")

    def test_index_rebuilds_after_layers_grow(self):
        result = self._result(["a"])
        assert result.layer("a").name == "a"
        from repro.sw.runtime import LayerStats

        result.layers.append(
            LayerStats(name="b", kind="conv", placement="accel", start_time=1, end_time=2)
        )
        assert result.layer("b").name == "b"

    def test_real_run_layers_resolve(self):
        soc = make_soc(gemmini=CFG)
        result = run_model_on_tile(soc.tile, compile_graph(tiny_cnn(), PARAMS))
        for layer in result.layers:
            assert result.layer(layer.name) is layer
