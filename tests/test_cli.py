"""CLI tests: every subcommand through the public entry point."""

import pytest

from repro.cli import main


class TestGenerate:
    def test_emits_header(self, capsys):
        assert main(["generate", "--dim", "8"]) == 0
        out = capsys.readouterr().out
        assert "#define DIM 8" in out
        assert "typedef int8_t elem_t;" in out

    def test_config_knobs(self, capsys):
        main(["generate", "--dim", "16", "--sp-kb", "512", "--no-im2col"])
        out = capsys.readouterr().out
        assert "#define SP_CAPACITY_BYTES 524288" in out
        assert "#define HAS_IM2COL 0" in out


class TestModels:
    def test_lists_all_five(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name in ("resnet50", "alexnet", "squeezenet", "mobilenetv2", "bert"):
            assert name in out


class TestRun:
    def test_runs_small_model(self, capsys):
        assert main(["run", "squeezenet", "--input-hw", "64"]) == 0
        out = capsys.readouterr().out
        assert "cycles:" in out
        assert "energy:" in out
        assert "conv" in out

    def test_baseline_flag(self, capsys):
        main(["run", "squeezenet", "--input-hw", "64", "--baseline"])
        out = capsys.readouterr().out
        assert "speedup vs rocket baseline" in out

    def test_boom_host(self, capsys):
        main(["run", "squeezenet", "--input-hw", "64", "--cpu", "boom"])
        assert "cycles:" in capsys.readouterr().out

    def test_bert_seq(self, capsys):
        main(["run", "bert", "--seq", "16"])
        assert "matmul" in capsys.readouterr().out

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "lenet"])


class TestArea:
    def test_breakdown(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "scratchpad" in out
        assert "fmax" in out

    def test_no_cpu(self, capsys):
        main(["area", "--cpu", "none"])
        out = capsys.readouterr().out
        assert "cpu" in out


class TestTable1:
    def test_matrix(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Gemmini" in out
        assert "Virtual Memory" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestDse:
    def test_prints_front_and_cache_stats(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert main([
            "dse", "--strategy", "random", "--budget", "10", "--seed", "0",
            "--max-dim", "8", "--cache-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "Pareto front" in out
        assert "latency_ms" in out
        assert "hit rate" in out

    def test_exports_and_reruns_from_cache(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        args = [
            "dse", "--strategy", "evolutionary", "--budget", "12", "--seed", "0",
            "--max-dim", "8", "--cache-dir", str(tmp_path / "cache"),
            "--export-json", str(tmp_path / "front.json"),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "12 misses" in first
        assert "12 hits / 0 misses (100% hit rate)" in second
        import json

        data = json.loads((tmp_path / "front.json").read_text())
        assert data["front"] and data["meta"]["strategy"] == "evolutionary"

    def test_constraint_and_objectives_flags(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert main([
            "dse", "--strategy", "grid", "--budget", "15", "--max-dim", "8",
            "--objectives", "energy_mj,area_mm2",
            "--constraint", "area_mm2<=2",
            "--cache-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "energy_mj" in out

    def test_bad_constraint_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="bad bound"):
            main([
                "dse", "--budget", "5", "--constraint", "area_mm2=4",
                "--cache-dir", str(tmp_path),
            ])


class TestSeedPlumbing:
    def test_run_echoes_seed(self, capsys):
        assert main(["run", "squeezenet", "--input-hw", "64", "--seed", "11"]) == 0
        assert "seed: 11" in capsys.readouterr().out

    def test_dse_echoes_seed(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert main([
            "dse", "--strategy", "random", "--budget", "4", "--seed", "3",
            "--max-dim", "8", "--cache-dir", str(tmp_path),
        ]) == 0
        assert "seed: 3" in capsys.readouterr().out


class TestServe:
    TENANT = "model=squeezenet,qps=200,requests=3,input_hw=32,slo_ms=5"

    def test_two_tenant_report(self, capsys):
        assert main([
            "serve", "--seed", "5", "--tiles", "2",
            "--tenant", self.TENANT,
            "--tenant", "model=squeezenet,qps=200,requests=3,input_hw=32,priority=1",
        ]) == 0
        out = capsys.readouterr().out
        assert "seed: 5" in out
        assert "p99" in out and "goodput" in out and "fairness" in out
        assert "tenant0" in out and "tenant1" in out and "overall" in out
        assert "6/6 served" in out

    def test_serve_is_deterministic(self, capsys):
        # --no-ledger: the ledger echo line carries a fresh run id per run.
        args = ["serve", "--seed", "0", "--tenant", self.TENANT, "--no-ledger"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_no_replay_matches_replay_for_single_tenant(self, capsys):
        """The fast path is bitwise-identical uncontended: everything except
        the replayed-request count must print the same."""
        spec = "model=squeezenet,qps=200,requests=5,input_hw=32,slo_ms=5"
        assert main(["serve", "--seed", "1", "--tenant", spec, "--no-ledger"]) == 0
        fast = capsys.readouterr().out
        assert main([
            "serve", "--seed", "1", "--tenant", spec, "--no-replay", "--no-ledger",
        ]) == 0
        slow = capsys.readouterr().out
        assert "(0 trace-replayed)" in slow
        assert "(0 trace-replayed)" not in fast

        def strip(text):
            # The recording pass behind replay dispatches extra schedule
            # lookups, so the schedule-cache counters are mode-dependent.
            lines = [
                line for line in text.splitlines()
                if not line.startswith("schedule cache:")
            ]
            return "\n".join(lines).replace(
                "(2 trace-replayed)", ""
            ).replace("(0 trace-replayed)", "")

        assert strip(fast) == strip(slow)

    def test_serve_profile_flag_prints_hotspots(self, capsys):
        assert main(["serve", "--tenant", self.TENANT, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "cProfile: top 20 by cumulative time" in out
        assert "cumtime" in out

    def test_run_profile_flag_prints_hotspots(self, capsys):
        assert main(["run", "squeezenet", "--input-hw", "32", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "cProfile: top 20 by cumulative time" in out
        assert "run_generator" in out

    def test_export_json_and_csv(self, capsys, tmp_path):
        json_path = tmp_path / "serve.json"
        csv_path = tmp_path / "serve.csv"
        assert main([
            "serve", "--tenant", self.TENANT,
            "--export-json", str(json_path), "--export-csv", str(csv_path),
        ]) == 0
        import csv as csv_mod
        import json as json_mod

        data = json_mod.loads(json_path.read_text())
        assert data["overall"]["p99_latency_ms"] > 0
        assert data["overall"]["goodput_qps"] > 0
        with csv_path.open() as fh:
            assert len(list(csv_mod.DictReader(fh))) == 3

    def test_scheduler_flag(self, capsys):
        assert main([
            "serve", "--scheduler", "batch", "--batch-size", "2",
            "--batch-window-ms", "0.5", "--tenant", self.TENANT,
        ]) == 0
        assert "scheduler batch" in capsys.readouterr().out

    def test_needs_a_tenant(self):
        with pytest.raises(SystemExit):
            main(["serve"])

    def test_trace_replay(self, capsys, tmp_path):
        import json as json_mod

        trace = tmp_path / "trace.json"
        trace.write_text(json_mod.dumps({
            "tenants": [{
                "model": "squeezenet", "input_hw": 32,
                "arrival_ms": [0.0, 0.2, 0.4],
            }]
        }))
        assert main(["serve", "--trace", str(trace)]) == 0
        assert "3/3 served" in capsys.readouterr().out


class TestDseServingObjectives:
    def test_serving_objectives_end_to_end(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert main([
            "dse", "--strategy", "random", "--budget", "3", "--seed", "0",
            "--max-dim", "8", "--cache-dir", str(tmp_path),
            "--objectives", "p99_latency_ms,area_mm2,qps_per_watt",
            "--traffic", "model=squeezenet,qps=300,requests=3,input_hw=32,slo_ms=5",
        ]) == 0
        out = capsys.readouterr().out
        assert "p99_latency_ms" in out and "qps_per_watt" in out

    def test_serving_objectives_require_traffic(self):
        with pytest.raises(SystemExit):
            main([
                "dse", "--budget", "3",
                "--objectives", "p99_latency_ms,area_mm2",
            ])


class TestObservabilityFlags:
    TENANT = "model=squeezenet,qps=200,requests=6,input_hw=32,slo_ms=5"

    def _serve_with_trace(self, tmp_path, capsys, extra=()):
        trace = tmp_path / "trace.json"
        assert main([
            "serve", "--seed", "2", "--tenant", self.TENANT,
            "--trace-out", str(trace), *extra,
        ]) == 0
        capsys.readouterr()
        return trace

    def test_serve_trace_out_writes_valid_chrome_trace(self, capsys, tmp_path):
        import json

        from repro.obs.export import validate_chrome_trace

        trace = self._serve_with_trace(tmp_path, capsys)
        data = json.loads(trace.read_text())
        assert validate_chrome_trace(data) == []
        assert data["metadata"]["seed"] == 2
        assert data["metadata"]["tool"] == "gemmini-repro"

    def test_trace_subcommand_summarises(self, capsys, tmp_path):
        trace = self._serve_with_trace(tmp_path, capsys)
        assert main(["trace", str(trace), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "spans" in out and "queue vs service per lane" in out
        assert "tenant0" in out

    def test_trace_subcommand_rejects_invalid(self, capsys, tmp_path):
        import json

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "B", "ts": 0}]}))
        assert main(["trace", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "INVALID" in err and "missing" in err

    def test_trace_subcommand_missing_file(self, capsys, tmp_path):
        assert main(["trace", str(tmp_path / "absent.json")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_serve_metrics_out_json_and_live(self, capsys, tmp_path):
        import json

        metrics = tmp_path / "metrics.json"
        assert main([
            "serve", "--seed", "2", "--tenant", self.TENANT,
            "--metrics-out", str(metrics), "--live-metrics", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "[serve t=" in out  # streamed while in flight
        doc = json.loads(metrics.read_text())
        assert doc["meta"]["command"] == "serve"
        assert doc["snapshots"] and doc["final"]["completed"] == 6

    def test_serve_metrics_out_csv(self, capsys, tmp_path):
        import csv

        metrics = tmp_path / "metrics.csv"
        assert main([
            "serve", "--seed", "2", "--tenant", self.TENANT,
            "--metrics-out", str(metrics),
        ]) == 0
        with metrics.open() as fh:
            rows = list(csv.DictReader(fh))
        assert rows and rows[-1]["completed"] == "6"

    def test_run_trace_and_metrics_out(self, capsys, tmp_path):
        import json

        from repro.obs.export import validate_chrome_trace

        trace, metrics = tmp_path / "run.json", tmp_path / "runm.json"
        assert main([
            "run", "squeezenet", "--input-hw", "32",
            "--trace-out", str(trace), "--metrics-out", str(metrics),
        ]) == 0
        data = json.loads(trace.read_text())
        assert validate_chrome_trace(data) == []
        doc = json.loads(metrics.read_text())
        assert doc["final"]["layers"] > 0
        assert doc["final"]["layer_ms_p99"] >= doc["final"]["layer_ms_p50"]

    def test_dse_trace_out(self, capsys, tmp_path, monkeypatch):
        import json

        from repro.obs.export import validate_chrome_trace

        monkeypatch.setenv("REPRO_WORKERS", "1")
        trace = tmp_path / "dse.json"
        assert main([
            "dse", "--strategy", "random", "--budget", "6", "--seed", "0",
            "--max-dim", "8", "--cache-dir", str(tmp_path / "cache"),
            "--trace-out", str(trace), "--metrics-out", str(tmp_path / "dsem.json"),
        ]) == 0
        data = json.loads(trace.read_text())
        assert validate_chrome_trace(data) == []
        names = {e.get("name") for e in data["traceEvents"]}
        assert any(n and n.startswith("gen[") for n in names)
        doc = json.loads((tmp_path / "dsem.json").read_text())
        assert doc["snapshots"][-1]["evaluations"] == 6

    def test_profile_out_writes_loadable_pstats(self, capsys, tmp_path):
        import pstats

        out = tmp_path / "serve.pstats"
        assert main([
            "serve", "--seed", "2", "--tenant", self.TENANT,
            "--profile-out", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        assert f"wrote {out}" in printed
        assert "cProfile: top 20" not in printed  # file-only, no dump to stdout
        stats = pstats.Stats(str(out))
        assert stats.total_calls > 0

    def test_run_profile_out(self, capsys, tmp_path):
        import pstats

        out = tmp_path / "run.pstats"
        assert main([
            "run", "squeezenet", "--input-hw", "32", "--profile-out", str(out),
        ]) == 0
        assert pstats.Stats(str(out)).total_calls > 0


class TestLedgerCli:
    TENANT = "model=squeezenet,qps=200,requests=3,input_hw=32,slo_ms=5"

    def _serve(self, ledger, seed, capsys):
        assert main([
            "serve", "--seed", str(seed), "--tenant", self.TENANT,
            "--ledger", str(ledger),
        ]) == 0
        out = capsys.readouterr().out
        assert "ledger: serve-" in out
        return out

    def test_serve_appends_provenance_stamped_record(self, capsys, tmp_path):
        import json

        ledger = tmp_path / "ledger.jsonl"
        self._serve(ledger, 0, capsys)
        (line,) = ledger.read_text().splitlines()
        record = json.loads(line)
        assert record["schema"] == 1
        assert record["kind"] == "serve"
        assert record["name"] == "fcfs:squeezenet"
        assert record["seed"] == 0
        assert record["wall_s"] > 0
        assert record["provenance"]["python"]
        assert record["metrics"]["p99_ms"] > 0
        assert record["metrics"]["goodput_qps"] > 0

    def test_run_appends_record(self, capsys, tmp_path):
        import json

        ledger = tmp_path / "ledger.jsonl"
        assert main([
            "run", "squeezenet", "--input-hw", "32", "--ledger", str(ledger),
        ]) == 0
        (record,) = [json.loads(l) for l in ledger.read_text().splitlines()]
        assert record["kind"] == "run" and record["name"] == "squeezenet"
        assert record["metrics"]["total_cycles"] > 0
        assert record["config_hash"]

    def test_dse_appends_record(self, capsys, tmp_path, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_WORKERS", "1")
        ledger = tmp_path / "ledger.jsonl"
        assert main([
            "dse", "--strategy", "random", "--budget", "4", "--seed", "0",
            "--max-dim", "8", "--cache-dir", str(tmp_path / "cache"),
            "--ledger", str(ledger),
        ]) == 0
        records = [json.loads(l) for l in ledger.read_text().splitlines()]
        (dse,) = [r for r in records if r["kind"] == "dse"]
        assert dse["name"] == "random:conv"
        assert dse["metrics"]["evaluations"] == 4
        assert dse["metrics"]["hypervolume"] > 0

    def test_no_ledger_flag_suppresses_append(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "env.jsonl"))
        assert main([
            "serve", "--seed", "0", "--tenant", self.TENANT, "--no-ledger",
        ]) == 0
        assert "ledger:" not in capsys.readouterr().out
        assert not (tmp_path / "env.jsonl").exists()

    def test_history_lists_and_filters(self, capsys, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        self._serve(ledger, 0, capsys)
        self._serve(ledger, 1, capsys)
        assert main(["history", "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "2 record(s)" in out and "fcfs:squeezenet" in out
        assert main(["history", "--ledger", str(ledger), "--kind", "dse"]) == 0
        assert "no matching records" in capsys.readouterr().out

    def test_history_json_and_show(self, capsys, tmp_path):
        import json

        ledger = tmp_path / "ledger.jsonl"
        self._serve(ledger, 0, capsys)
        assert main(["history", "--ledger", str(ledger), "--json"]) == 0
        (record,) = json.loads(capsys.readouterr().out)
        assert record["provenance"]["python"]
        assert main(["history", record["run_id"], "--ledger", str(ledger)]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["run_id"] == record["run_id"]

    def test_history_missing_ledger(self, capsys, tmp_path):
        assert main(["history", "--ledger", str(tmp_path / "none.jsonl")]) == 1
        assert "no ledger" in capsys.readouterr().err

    def test_compare_two_runs(self, capsys, tmp_path):
        import json
        import re

        ledger = tmp_path / "ledger.jsonl"
        a = re.search(r"ledger: (\S+)", self._serve(ledger, 0, capsys)).group(1)
        b = re.search(r"ledger: (\S+)", self._serve(ledger, 1, capsys)).group(1)
        assert main([
            "compare", a, b, "--ledger", str(ledger),
            "--metrics", "p50_ms,p95_ms,p99_ms,mean_ms",
        ]) == 0
        out = capsys.readouterr().out
        assert "no significant regression" in out
        assert main([
            "compare", a, b, "--ledger", str(ledger), "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["run_a"]["run_id"] == a and doc["run_b"]["run_id"] == b

    def test_compare_unknown_run_id(self, capsys, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        self._serve(ledger, 0, capsys)
        assert main(["compare", "zzz", "yyy", "--ledger", str(ledger)]) == 1
        assert "no ledger record" in capsys.readouterr().err

    def test_regress_gate_trips_on_slow_candidate(self, capsys, tmp_path):
        """A baseline ledger file vs a candidate ledger with a 3x wall-time
        slowdown: regress must exit 1 and name the offending metric."""
        from repro.obs import RunLedger

        base = RunLedger(tmp_path / "base.jsonl")
        cand = RunLedger(tmp_path / "cand.jsonl")
        for i in range(3):
            base.record("bench", "t1", wall_s=1.0 + 0.01 * i)
            cand.record("bench", "t1", wall_s=3.0 + 0.01 * i)
        assert main([
            "regress", "--baseline", str(tmp_path / "base.jsonl"),
            "--ledger", str(tmp_path / "cand.jsonl"),
        ]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION: bench/t1:wall_s" in out

    def test_regress_passes_clean_history(self, capsys, tmp_path):
        from repro.obs import RunLedger

        base = RunLedger(tmp_path / "base.jsonl")
        cand = RunLedger(tmp_path / "cand.jsonl")
        for i in range(3):
            base.record("bench", "t1", wall_s=1.0 + 0.01 * i)
            cand.record("bench", "t1", wall_s=1.0 + 0.012 * i)
        assert main([
            "regress", "--baseline", str(tmp_path / "base.jsonl"),
            "--ledger", str(tmp_path / "cand.jsonl"),
        ]) == 0
        assert "no significant regression" in capsys.readouterr().out

    def test_regress_empty_baseline_gates_nothing(self, capsys, tmp_path):
        from repro.obs import RunLedger

        RunLedger(tmp_path / "cand.jsonl").record("bench", "t1", wall_s=1.0)
        assert main([
            "regress", "--baseline", "no-such-ref",
            "--ledger", str(tmp_path / "cand.jsonl"),
        ]) == 0
        assert "nothing to gate" in capsys.readouterr().out

    def test_regress_json_output(self, capsys, tmp_path):
        import json

        from repro.obs import RunLedger

        base = RunLedger(tmp_path / "base.jsonl")
        cand = RunLedger(tmp_path / "cand.jsonl")
        base.record("bench", "t1", wall_s=1.0)
        cand.record("bench", "t1", wall_s=5.0)
        assert main([
            "regress", "--baseline", str(tmp_path / "base.jsonl"),
            "--ledger", str(tmp_path / "cand.jsonl"), "--json",
        ]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False
        assert doc["regressions"][0]["metric"] == "wall_s"


class TestTraceJsonAndDiff:
    TENANT = "model=squeezenet,qps=200,requests=3,input_hw=32,slo_ms=5"

    def _trace(self, tmp_path, capsys, name, seed):
        trace = tmp_path / name
        assert main([
            "serve", "--seed", str(seed), "--tenant", self.TENANT,
            "--trace-out", str(trace), "--no-ledger",
        ]) == 0
        capsys.readouterr()
        return trace

    def test_trace_json_summary(self, capsys, tmp_path):
        import json

        trace = self._trace(tmp_path, capsys, "a.json", 0)
        assert main(["trace", str(trace), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["valid"] is True and doc["violations"] == []
        assert doc["summary"]["span_count"] > 0
        assert "tenant0" in doc["summary"]["spans"]

    def test_trace_json_invalid_file(self, capsys, tmp_path):
        import json

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "B", "ts": 0}]}))
        assert main(["trace", str(bad), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["valid"] is False and doc["violations"]

    def test_trace_diff_text(self, capsys, tmp_path):
        a = self._trace(tmp_path, capsys, "a.json", 0)
        b = self._trace(tmp_path, capsys, "b.json", 1)
        assert main(["trace", "--diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "trace diff" in out
        assert "span stems by |total-time delta|" in out

    def test_trace_diff_json(self, capsys, tmp_path):
        import json

        a = self._trace(tmp_path, capsys, "a.json", 0)
        b = self._trace(tmp_path, capsys, "b.json", 1)
        assert main(["trace", "--diff", str(a), str(b), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["valid"] is True
        assert doc["spans"] and doc["lanes"]

    def test_trace_diff_needs_two_files(self, capsys, tmp_path):
        a = self._trace(tmp_path, capsys, "a.json", 0)
        with pytest.raises(SystemExit):
            main(["trace", "--diff", str(a)])

    def test_trace_rejects_extra_files_without_diff(self, capsys, tmp_path):
        a = self._trace(tmp_path, capsys, "a.json", 0)
        with pytest.raises(SystemExit):
            main(["trace", str(a), str(a)])


class TestTune:
    def _records(self):
        from repro.obs import ledger_from_env

        return ledger_from_env().records()

    def test_cold_tune_then_warm_tune(self, capsys, tmp_path):
        cache = str(tmp_path / "sched.jsonl")
        argv = ["tune", "squeezenet", "--input-hw", "48",
                "--schedule-cache", cache, "--verify-top", "2"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache now holds" in out
        assert main(argv) == 0  # warm: every shape served from the cache
        capsys.readouterr()
        cold, warm = [r for r in self._records() if r.kind == "tune"]
        assert cold.metrics["shapes_cached"] == 0
        assert cold.metrics["shapes_tuned"] == cold.metrics["shapes_total"]
        assert warm.metrics["shapes_cached"] == warm.metrics["shapes_total"]
        assert warm.metrics["shapes_tuned"] == 0
        # The never-worse contract, as recorded in the ledger.
        assert cold.metrics["tuned_cycles_total"] <= cold.metrics["greedy_cycles_total"]

    def test_run_dispatches_through_tuned_cache(self, capsys, tmp_path):
        cache = str(tmp_path / "sched.jsonl")
        assert main(["tune", "squeezenet", "--input-hw", "48",
                     "--schedule-cache", cache, "--verify-top", "2"]) == 0
        capsys.readouterr()
        assert main(["run", "squeezenet", "--input-hw", "48",
                     "--schedule-cache", cache]) == 0
        out = capsys.readouterr().out
        assert "schedule cache:" in out
        assert " 0 misses" in out
        run = [r for r in self._records() if r.kind == "run"][-1]
        assert run.metrics["schedule_misses"] == 0
        assert run.metrics["schedule_hits"] == run.metrics["schedule_lookups"]
        assert run.metrics["schedule_hits"] > 0

    def test_run_without_cache_counts_misses(self, capsys, tmp_path):
        assert main(["run", "squeezenet", "--input-hw", "48",
                     "--schedule-cache", str(tmp_path / "empty.jsonl")]) == 0
        out = capsys.readouterr().out
        assert " 0 hits" in out

    def test_cache_off_disables_tuning(self, capsys):
        assert main(["tune", "squeezenet", "--schedule-cache", "off"]) == 1
        assert "disabled" in capsys.readouterr().err

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["tune", "lenet"])
