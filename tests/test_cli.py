"""CLI tests: every subcommand through the public entry point."""

import pytest

from repro.cli import main


class TestGenerate:
    def test_emits_header(self, capsys):
        assert main(["generate", "--dim", "8"]) == 0
        out = capsys.readouterr().out
        assert "#define DIM 8" in out
        assert "typedef int8_t elem_t;" in out

    def test_config_knobs(self, capsys):
        main(["generate", "--dim", "16", "--sp-kb", "512", "--no-im2col"])
        out = capsys.readouterr().out
        assert "#define SP_CAPACITY_BYTES 524288" in out
        assert "#define HAS_IM2COL 0" in out


class TestModels:
    def test_lists_all_five(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name in ("resnet50", "alexnet", "squeezenet", "mobilenetv2", "bert"):
            assert name in out


class TestRun:
    def test_runs_small_model(self, capsys):
        assert main(["run", "squeezenet", "--input-hw", "64"]) == 0
        out = capsys.readouterr().out
        assert "cycles:" in out
        assert "energy:" in out
        assert "conv" in out

    def test_baseline_flag(self, capsys):
        main(["run", "squeezenet", "--input-hw", "64", "--baseline"])
        out = capsys.readouterr().out
        assert "speedup vs rocket baseline" in out

    def test_boom_host(self, capsys):
        main(["run", "squeezenet", "--input-hw", "64", "--cpu", "boom"])
        assert "cycles:" in capsys.readouterr().out

    def test_bert_seq(self, capsys):
        main(["run", "bert", "--seq", "16"])
        assert "matmul" in capsys.readouterr().out

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "lenet"])


class TestArea:
    def test_breakdown(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "scratchpad" in out
        assert "fmax" in out

    def test_no_cpu(self, capsys):
        main(["area", "--cpu", "none"])
        out = capsys.readouterr().out
        assert "cpu" in out


class TestTable1:
    def test_matrix(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Gemmini" in out
        assert "Virtual Memory" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestDse:
    def test_prints_front_and_cache_stats(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert main([
            "dse", "--strategy", "random", "--budget", "10", "--seed", "0",
            "--max-dim", "8", "--cache-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "Pareto front" in out
        assert "latency_ms" in out
        assert "hit rate" in out

    def test_exports_and_reruns_from_cache(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        args = [
            "dse", "--strategy", "evolutionary", "--budget", "12", "--seed", "0",
            "--max-dim", "8", "--cache-dir", str(tmp_path / "cache"),
            "--export-json", str(tmp_path / "front.json"),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "12 misses" in first
        assert "12 hits / 0 misses (100% hit rate)" in second
        import json

        data = json.loads((tmp_path / "front.json").read_text())
        assert data["front"] and data["meta"]["strategy"] == "evolutionary"

    def test_constraint_and_objectives_flags(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert main([
            "dse", "--strategy", "grid", "--budget", "15", "--max-dim", "8",
            "--objectives", "energy_mj,area_mm2",
            "--constraint", "area_mm2<=2",
            "--cache-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "energy_mj" in out

    def test_bad_constraint_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="bad bound"):
            main([
                "dse", "--budget", "5", "--constraint", "area_mm2=4",
                "--cache-dir", str(tmp_path),
            ])
