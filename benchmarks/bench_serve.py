"""Serving smoke: two Poisson tenants on a two-tile SoC, FCFS vs SJF.

Routes each scheduler's simulation through the session
:class:`~repro.eval.runner.ExperimentRunner` (so re-runs hit the result
cache) and checks the invariants the subsystem guarantees: every request
served, non-zero tail latency and goodput, and a deterministic request log
under a fixed seed.
"""

from dataclasses import replace

from benchmarks.conftest import once
from repro.eval.report import format_table
from repro.serve import TenantSpec, TrafficProfile, simulate_serving

PROFILE = TrafficProfile(
    tenants=(
        TenantSpec(
            name="cnn-lo",
            model="squeezenet",
            arrival="poisson",
            rate_qps=120.0,
            num_requests=8,
            input_hw=32,
            slo_ms=2.0,
        ),
        TenantSpec(
            name="cnn-hi",
            model="squeezenet",
            arrival="bursty",
            rate_qps=240.0,
            num_requests=8,
            input_hw=32,
            priority=1,
            slo_ms=2.0,
            burst_on_ms=2.0,
            burst_off_ms=2.0,
        ),
    ),
    num_tiles=2,
    seed=0,
)


def _serve_all(runner):
    results = {}
    for name in ("fcfs", "sjf"):
        profile = replace(PROFILE, scheduler=name)
        results[name] = runner.run(simulate_serving, label=f"serve_{name}", profile=profile)
    return results


def test_serve_two_tenants(benchmark, emit, runner):
    results = once(benchmark, lambda: _serve_all(runner), runner=runner)

    rows = []
    for name, result in results.items():
        overall = result.report.overall
        rows.append(
            (
                name,
                str(overall.completed),
                f"{overall.p50_ms:.3f}",
                f"{overall.p99_ms:.3f}",
                f"{overall.goodput_qps:.1f}",
                f"{overall.slo_violation_rate:.1%}",
                f"{result.report.fairness:.3f}",
            )
        )
    text = format_table(
        ["scheduler", "done", "p50 ms", "p99 ms", "goodput", "SLO viol", "fairness"],
        rows,
        title="two-tenant serving, 2 tiles, Poisson + bursty squeezenet@32",
    )
    text += f"\n{runner.stats()}"
    emit("serve_two_tenants", text)

    for name, result in results.items():
        overall = result.report.overall
        assert result.completed == PROFILE.total_requests, f"{name}: dropped requests"
        assert overall.p99_ms > 0, f"{name}: zero p99 latency"
        assert overall.throughput_qps > 0, f"{name}: zero throughput"
