"""Event-queue serving engine vs the lockstep-merge baseline.

The two-tenant serving study (Fig. 9c spirit) runs once through the
historical lockstep driver — which materialises every arrival up front
and round-robins generator frames across all tiles — and once through
the incremental event engine, which admits requests lazily from the
streaming arrival sources and retires them online.

The contract is strict: the two engines must produce **bitwise
identical** request logs, reports, and memory counters; the event engine
buys its O(in-flight + tenants) working set for free.  The benchmark
records the wall-time ratio and the peak pending/in-flight request
counts; CI reads ``extra_info`` from the BENCH JSON and fails on any
parity mismatch or when ``peak_pending`` reaches the issued-request
total (the signature of eager materialisation creeping back in), and
the ledger's statistical gate (``regress --baseline``) watches the wall
times across runs.
"""

import time

from benchmarks.conftest import FAST
from repro.eval.report import format_table
from repro.serve import TenantSpec, TrafficProfile, simulate_serving

REQUESTS = 24 if FAST else 48
QPS = 120.0
SEED = 3

STUDY = TrafficProfile(
    tenants=(
        TenantSpec(
            name="web",
            model="squeezenet",
            arrival="poisson",
            rate_qps=QPS,
            num_requests=REQUESTS,
            input_hw=32,
            slo_ms=10.0,
        ),
        TenantSpec(
            name="batchy",
            model="mobilenetv2",
            arrival="closed",
            num_requests=REQUESTS,
            concurrency=2,
            think_ms=0.5,
            input_hw=32,
            slo_ms=20.0,
        ),
    ),
    num_tiles=2,
    seed=SEED,
)


def _timed(engine):
    t0 = time.perf_counter()
    result = simulate_serving(STUDY, engine=engine)
    return result, time.perf_counter() - t0


def test_serve_engine_parity_and_memory(benchmark, emit):
    lockstep, t_lockstep = _timed("lockstep")
    event, t_event = _timed("event")

    parity_ok = (
        event.records == lockstep.records
        and event.report.overall.summary() == lockstep.report.overall.summary()
        and event.makespan_cycles == lockstep.makespan_cycles
        and event.l2_miss_rate == lockstep.l2_miss_rate
        and event.dram_bytes == lockstep.dram_bytes
        and event.issued == lockstep.issued
        and event.dropped == lockstep.dropped
    )
    wall_ratio = t_event / t_lockstep

    benchmark.extra_info["requests_per_tenant"] = REQUESTS
    benchmark.extra_info["issued"] = event.issued
    benchmark.extra_info["lockstep_s"] = t_lockstep
    benchmark.extra_info["event_s"] = t_event
    benchmark.extra_info["wall_ratio"] = wall_ratio
    benchmark.extra_info["peak_pending"] = event.peak_pending
    benchmark.extra_info["peak_inflight"] = event.peak_inflight
    benchmark.extra_info["parity_ok"] = bool(parity_ok)

    # The recorded timing sample: a fresh event-engine run end to end.
    benchmark.pedantic(lambda: simulate_serving(STUDY, engine="event"), rounds=1, iterations=1)

    text = format_table(
        ["engine", "wall s", "peak pending", "peak in-flight"],
        [
            ("lockstep", f"{t_lockstep:.2f}", str(lockstep.peak_pending), str(lockstep.peak_inflight)),
            ("event", f"{t_event:.2f}", str(event.peak_pending), str(event.peak_inflight)),
        ],
        title=(
            f"serving engines ({REQUESTS} req/tenant): event at "
            f"{wall_ratio:.2f}x lockstep wall time, pending bounded at "
            f"{event.peak_pending}/{event.issued} issued"
        ),
    )
    emit("serve_engine", text)

    assert parity_ok, "event engine diverged from the lockstep baseline"
    assert event.peak_pending < event.issued, (
        f"streaming admission held {event.peak_pending} of {event.issued} "
        "issued requests — arrivals are being materialised eagerly"
    )
