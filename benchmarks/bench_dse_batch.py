"""Batched analytic DSE evaluation: throughput vs the per-point path.

Scores one randomized 512-point batch of the full example space through
:func:`~repro.dse.evaluate_design_batch` and through a per-point
:func:`~repro.dse.evaluate_design` loop, asserts the two agree within
1e-9 relative on every analytic metric, and records the speedup.  The
headline number uses a whole-network workload (mobilenetv2 — the shape
count a real DSE pays per point); the single-shape conv workload is
recorded alongside as the overhead-bound floor.

CI reads ``extra_info`` from the BENCH JSON and fails when the batched
path regresses below 3x the scalar baseline measured in the same run
(the 512-point target on a quiet machine is >= 10x).
"""

import math
import random
import time

from benchmarks.conftest import FAST
from repro.dse import (
    EvaluationSpec,
    conv_workload,
    evaluate_design,
    evaluate_design_batch,
    gemmini_space,
    model_workload,
)

POINTS = 128 if FAST else 512
SEED = 0
REL_TOL = 1e-9


def _sample_points(n):
    space = gemmini_space(max_dim=32)
    rng = random.Random(SEED)
    return [space.sample(rng) for __ in range(n)]


def _time_best(fn, rounds=3):
    best = math.inf
    result = None
    for __ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def _measure(points, spec):
    scalar, t_scalar = _time_best(lambda: [evaluate_design(p, spec) for p in points])
    batched, t_batch = _time_best(lambda: evaluate_design_batch(points, spec))
    worst_rel = 0.0
    for s, b in zip(scalar, batched):
        assert s.point == b.point and s.config_summary == b.config_summary
        for (name, sv), (__, bv) in zip(s.metrics, b.metrics):
            rel = abs(sv - bv) / abs(sv) if sv else abs(bv)
            worst_rel = max(worst_rel, rel)
            assert rel <= REL_TOL, f"{name}: batch {bv!r} vs scalar {sv!r}"
    return {
        "scalar_s": t_scalar,
        "batch_s": t_batch,
        "speedup": t_scalar / t_batch,
        "scalar_points_per_s": len(points) / t_scalar,
        "batch_points_per_s": len(points) / t_batch,
        "worst_rel_err": worst_rel,
    }


def test_dse_batch_speedup(benchmark, emit):
    points = _sample_points(POINTS)
    model_spec = EvaluationSpec(workload=model_workload("mobilenetv2", input_hw=96))
    conv_spec = EvaluationSpec(workload=conv_workload())

    # Warm both paths (imports, numpy dispatch, model graph construction).
    evaluate_design_batch(points[:8], model_spec)
    [evaluate_design(p, model_spec) for p in points[:8]]

    model_stats = _measure(points, model_spec)
    conv_stats = _measure(points, conv_spec)

    benchmark.extra_info["points"] = POINTS
    benchmark.extra_info["model_workload"] = model_stats
    benchmark.extra_info["conv_workload"] = conv_stats
    # The gate CI enforces: the realistic whole-network evaluation.
    benchmark.extra_info["speedup"] = model_stats["speedup"]
    benchmark.extra_info["batch_points_per_s"] = model_stats["batch_points_per_s"]
    benchmark.pedantic(
        lambda: evaluate_design_batch(points, model_spec), rounds=3, iterations=1
    )

    lines = [f"batched analytic evaluation over {POINTS} randomized points:"]
    for name, stats in (("mobilenetv2", model_stats), ("conv3x3", conv_stats)):
        lines.append(
            f"  {name:12s} scalar {stats['scalar_points_per_s']:8.0f} pts/s | "
            f"batched {stats['batch_points_per_s']:8.0f} pts/s | "
            f"{stats['speedup']:5.1f}x | worst rel err {stats['worst_rel_err']:.2e}"
        )
    emit("dse_batch_speedup", "\n".join(lines))

    assert model_stats["worst_rel_err"] <= REL_TOL
    assert conv_stats["worst_rel_err"] <= REL_TOL
    # In-run regression floor (CI re-checks from the JSON); quiet machines
    # see >= 10x on the whole-network workload.
    assert model_stats["speedup"] >= 3.0, (
        f"batched path only {model_stats['speedup']:.1f}x over scalar"
    )
