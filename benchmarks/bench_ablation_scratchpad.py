"""Ablation: scratchpad capacity sweep (the Figure 9 'BigSP' axis, widened).

Sweeps the private scratchpad across 4x while keeping the rest of the SoC
fixed, running a mid-size CNN: returns the marginal value of accelerator-
private SRAM that the Section V-B partitioning decision trades against L2.
"""

from dataclasses import replace

from benchmarks.conftest import once
from repro.core.config import default_config
from repro.core.generator import SoftwareParams
from repro.eval.report import format_table
from repro.models import build_model
from repro.soc.soc import make_soc
from repro.sw.compiler import compile_graph
from repro.sw.runtime import run_model_on_tile

CAPACITIES_KB = (128, 256, 512)


def bench_point(kb: int) -> tuple:
    """One sweep point (module-level so the runner can fan it out)."""
    graph = build_model("squeezenet", input_hw=128)
    cfg = replace(
        default_config().with_im2col(True),
        sp_capacity_bytes=kb * 1024,
    )
    soc = make_soc(gemmini=cfg)
    model = compile_graph(graph, SoftwareParams.from_config(cfg))
    result = run_model_on_tile(soc.tile, model)
    return (kb, result.total_cycles, soc.mem.dram.bytes_moved)


def test_ablation_scratchpad_capacity(benchmark, emit, runner):
    rows = once(
        benchmark, lambda: runner.map(bench_point, CAPACITIES_KB, label="ablation_sp"), runner=runner
    )
    base = rows[0][1]
    text = format_table(
        ["scratchpad (KB)", "cycles", "DRAM bytes", "speedup vs 128KB"],
        [(kb, f"{c / 1e6:.2f}M", f"{b / 1e6:.1f}MB", f"{base / c:.3f}") for kb, c, b in rows],
        title="Ablation: scratchpad capacity (SqueezeNet @128px)",
    )
    emit("ablation_scratchpad", text)

    # Bigger scratchpads strictly reduce DRAM traffic (fewer refetches);
    # cycle effects are second-order once layers fit (the Figure 9 "matmuls
    # gain ~1%" observation), so only bound them to a band.
    cycles = [c for __, c, __b in rows]
    traffic = [b for __, __c, b in rows]
    assert traffic == sorted(traffic, reverse=True)
    assert max(cycles) <= min(cycles) * 1.20
