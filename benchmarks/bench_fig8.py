"""Figure 8: virtual-address-translation co-design (TLB sizing sweep).

Paper claims (ResNet50 on the low-power edge config):
  8a (no filter registers): growing the private TLB 4->16 gains up to 11%;
      even a 512-entry shared L2 TLB never gains more than 8%; private hit
      rate stays above 84%.
  8b (filter registers): a 4-entry private TLB with filters comes within 2%
      of the best observed performance; >=90% of requests are served by the
      private level; 87% / 83% of consecutive read / write requests hit the
      same page.
"""

from benchmarks.conftest import INPUT_HW, once
from repro.eval.experiments import run_fig8
from repro.eval.report import format_table


def test_fig8_tlb_sweep(benchmark, emit, runner):
    result = once(
        benchmark,
        lambda: runner.run(
            run_fig8,
            private_sizes=(4, 8, 16, 32),
            shared_sizes=(0, 128, 512),
            filters=(False, True),
            input_hw=INPUT_HW,
        ),
        runner=runner,
    )

    rows = []
    for p in sorted(
        result.points,
        key=lambda p: (p.filter_registers, p.private_entries, p.shared_entries),
    ):
        rows.append(
            (
                "8b" if p.filter_registers else "8a",
                p.private_entries,
                p.shared_entries,
                f"{p.normalized_performance:.3f}",
                f"{p.private_hit_rate:.3f}",
                f"{p.hit_rate_including_filters:.3f}",
            )
        )
    text = format_table(
        ["fig", "private", "sharedL2", "norm perf", "priv hit", "hit+filters"],
        rows,
        title="Figure 8: normalized ResNet50 performance vs TLB sizes",
    )
    sample = result.point(4, 0, True)
    text += (
        f"\nconsecutive same-page: reads={sample.consecutive_same_read:.2f}"
        f" (paper 0.87), writes={sample.consecutive_same_write:.2f} (paper 0.83)"
    )
    gap = 1.0 - result.point(4, 0, True).normalized_performance
    text += f"\n4-entry private + filters, no shared TLB: {100 * gap:.1f}% below best (paper <=2%)"
    emit("fig8_tlb_sweep", text)

    # Shape claims.
    no_filter_4 = result.point(4, 0, False)
    no_filter_16 = result.point(16, 0, False)
    assert no_filter_16.total_cycles <= no_filter_4.total_cycles  # private TLB helps
    assert gap <= 0.05  # filters rescue the tiny TLB (paper: within 2%)
    assert result.point(4, 0, True).hit_rate_including_filters >= 0.85
    assert sample.consecutive_same_read >= 0.7
    assert sample.consecutive_same_write >= 0.7
    # The shared L2 TLB helps less than growing the private TLB did (8a).
    gain_private = no_filter_4.total_cycles / no_filter_16.total_cycles
    gain_shared = no_filter_4.total_cycles / result.point(4, 512, False).total_cycles
    assert gain_private >= 1.0
    assert gain_shared <= gain_private * 1.05
