"""Shared benchmark configuration.

Every paper artifact gets one pytest-benchmark entry that executes the
corresponding experiment runner once (``rounds=1`` — these are multi-second
simulations, not microbenchmarks) and emits the regenerated table/series to
``benchmark_results/<name>.txt`` as well as stdout.

Experiments route through :class:`repro.eval.runner.ExperimentRunner` (the
session-scoped ``runner`` fixture), so multi-point sweeps fan out across
cores and results can be cached between invocations.

Environment knobs:

* ``REPRO_FAST=1`` — run the DNN-level experiments at reduced input
  resolution (96px CNNs / seq-32 BERT) for quick iteration; the default
  reproduces the paper's full problem sizes.
* ``REPRO_WORKERS=N`` — cap the runner's process pool (1 = serial).
* ``REPRO_CACHE_DIR=path`` — persist per-config experiment results there
  and reuse them on re-runs.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.eval.runner import ExperimentRunner

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmark_results"

FAST = bool(int(os.environ.get("REPRO_FAST", "0")))

#: CNN input resolution and BERT sequence length used by the DNN benches.
INPUT_HW = 96 if FAST else 224
BERT_SEQ = 32 if FAST else 128


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def runner():
    """Session-wide parallel experiment runner with optional result cache."""
    cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    with ExperimentRunner(cache=cache_dir) as active:
        yield active


@pytest.fixture
def emit(results_dir):
    """Write a rendered artifact to benchmark_results/ and stdout."""

    def _emit(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n=== {name} ===")
        print(text)

    return _emit


def once(benchmark, fn, runner=None):
    """Run a whole-experiment benchmark exactly once.

    When the experiment routes through an :class:`ExperimentRunner`, pass it
    so the BENCH JSON carries this benchmark's own cache hit/miss counters
    (the runner is session-scoped; stats are reset per phase).
    """
    if runner is not None:
        runner.reset_stats()
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    if runner is not None:
        benchmark.extra_info["runner_cache"] = runner.stats().to_dict()
    return result
