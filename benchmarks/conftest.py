"""Shared benchmark configuration.

Every paper artifact gets one pytest-benchmark entry that executes the
corresponding experiment runner once (``rounds=1`` — these are multi-second
simulations, not microbenchmarks) and emits the regenerated table/series to
``benchmark_results/<name>.txt`` as well as stdout.

Set ``REPRO_FAST=1`` to run the DNN-level experiments at reduced input
resolution (96px CNNs / seq-32 BERT) for quick iteration; the default
reproduces the paper's full problem sizes.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmark_results"

FAST = bool(int(os.environ.get("REPRO_FAST", "0")))

#: CNN input resolution and BERT sequence length used by the DNN benches.
INPUT_HW = 96 if FAST else 224
BERT_SEQ = 32 if FAST else 128


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir):
    """Write a rendered artifact to benchmark_results/ and stdout."""

    def _emit(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n=== {name} ===")
        print(text)

    return _emit


def once(benchmark, fn):
    """Run a whole-experiment benchmark exactly once."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
