"""Shared benchmark configuration.

Every paper artifact gets one pytest-benchmark entry that executes the
corresponding experiment runner once (``rounds=1`` — these are multi-second
simulations, not microbenchmarks) and emits the regenerated table/series to
``benchmark_results/<name>.txt`` as well as stdout.

Experiments route through :class:`repro.eval.runner.ExperimentRunner` (the
session-scoped ``runner`` fixture), so multi-point sweeps fan out across
cores and results can be cached between invocations.

Environment knobs:

* ``REPRO_FAST=1`` — run the DNN-level experiments at reduced input
  resolution (96px CNNs / seq-32 BERT) for quick iteration; the default
  reproduces the paper's full problem sizes.
* ``REPRO_WORKERS=N`` — cap the runner's process pool (1 = serial).
* ``REPRO_CACHE_DIR=path`` — persist per-config experiment results there
  and reuse them on re-runs.
* ``REPRO_LEDGER=path`` — append one provenance-stamped record per
  benchmark to this run ledger (``off`` disables; see ``gemmini-repro
  history`` / ``regress``).
* ``REPRO_BENCH_SLEEP_S=seconds`` — inject an artificial slowdown into
  every benchmark (test shim for the regression gate; never set in
  normal runs).
"""

from __future__ import annotations

import os
import pathlib
import time

import pytest

from repro.eval.runner import ExperimentRunner
from repro.obs import ledger_from_env, provenance

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmark_results"

FAST = bool(int(os.environ.get("REPRO_FAST", "0")))

#: CNN input resolution and BERT sequence length used by the DNN benches.
INPUT_HW = 96 if FAST else 224
BERT_SEQ = 32 if FAST else 128


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def runner():
    """Session-wide parallel experiment runner with optional result cache."""
    cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    with ExperimentRunner(cache=cache_dir) as active:
        yield active


@pytest.fixture
def emit(results_dir):
    """Write a rendered artifact to benchmark_results/ and stdout."""

    def _emit(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n=== {name} ===")
        print(text)

    return _emit


#: injected slowdown (seconds) — regression-gate test shim, normally 0
_SLEEP_S = float(os.environ.get("REPRO_BENCH_SLEEP_S", "0") or 0)


def _bench_wall_stats(benchmark) -> dict[str, float]:
    """min/mean/max wall seconds from the benchmark's recorded rounds."""
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    if stats is None:
        return {}
    out = {}
    for key in ("min", "mean", "max"):
        value = getattr(stats, key, None)
        if isinstance(value, (int, float)):
            out[f"wall_{key}_s"] = float(value)
    return out


def once(benchmark, fn, runner=None):
    """Run a whole-experiment benchmark exactly once.

    When the experiment routes through an :class:`ExperimentRunner`, pass it
    so the BENCH JSON carries this benchmark's own cache hit/miss counters
    (the runner is session-scoped; stats are reset per phase).

    Every invocation stamps the BENCH JSON ``extra_info`` with the run's
    provenance and appends one record to the run ledger (``REPRO_LEDGER``),
    which is what ``gemmini-repro regress`` gates CI on.
    """
    if runner is not None:
        runner.reset_stats()
    timed = fn
    if _SLEEP_S > 0:

        def timed():
            time.sleep(_SLEEP_S)
            return fn()

    result = benchmark.pedantic(timed, rounds=1, iterations=1)
    if runner is not None:
        benchmark.extra_info["runner_cache"] = runner.stats().to_dict()
    walls = _bench_wall_stats(benchmark)
    ledger = ledger_from_env()
    record = ledger.record(
        "bench",
        getattr(benchmark, "name", fn.__name__),
        wall_s=walls.get("wall_min_s"),
        metrics=walls,
    )
    benchmark.extra_info["provenance"] = provenance()
    benchmark.extra_info["run_id"] = record.run_id
    return result
