"""Trace record/replay fast path vs the per-macro-op serving baseline.

The two-tenant serving study (Fig. 9c spirit): squeezenet and mobilenetv2
pinned to their own tiles of a dual-tile SoC, Poisson traffic, shared
L2/DRAM/PTW contention.  The whole study runs once through the recording
path (``replay=False``) and once through the trace-replay engine, and the
benchmark records the wall-clock speedup plus the replayed request count.

Correctness is asserted in-run, matching the engine's contract:

* a *single-tenant* control study must be **bitwise identical** between the
  two paths (request log, report summary, memory counters), and
* the contended two-tenant metrics must agree within the documented
  tolerance (per-tenant mean 10%, p99 15%, makespan 5%).

CI reads ``extra_info`` from the BENCH JSON and fails below 3x or on any
parity mismatch; a quiet machine at the full problem size sees >= 5x.
"""

import time

from benchmarks.conftest import FAST
from repro.eval.report import format_table
from repro.serve import TenantSpec, TrafficProfile, simulate_serving

#: requests per tenant — the fast CI profile keeps the (uncacheable)
#: recording-path baseline run short; the full size is what the >=5x
#: acceptance number is quoted at.
REQUESTS = 32 if FAST else 64
QPS = 60.0
SEED = 0

TENANT_A = TenantSpec(
    name="teamA",
    model="squeezenet",
    arrival="poisson",
    rate_qps=QPS,
    num_requests=REQUESTS,
    input_hw=32,
    slo_ms=10.0,
    pin_tile=0,
)
TENANT_B = TenantSpec(
    name="teamB",
    model="mobilenetv2",
    arrival="poisson",
    rate_qps=QPS,
    num_requests=REQUESTS,
    input_hw=32,
    slo_ms=10.0,
    pin_tile=1,
)
STUDY = TrafficProfile(tenants=(TENANT_A, TENANT_B), num_tiles=2, seed=SEED)
CONTROL = TrafficProfile(
    tenants=(TenantSpec(
        name="solo",
        model="squeezenet",
        arrival="poisson",
        rate_qps=QPS,
        num_requests=min(REQUESTS, 12),
        input_hw=32,
        slo_ms=10.0,
    ),),
    num_tiles=1,
    seed=SEED,
)


def _timed(profile, replay):
    t0 = time.perf_counter()
    result = simulate_serving(profile, replay=replay)
    return result, time.perf_counter() - t0


def _assert_bitwise(base, fast):
    assert fast.records == base.records, "uncontended replay diverged from the generator"
    assert fast.report.overall.summary() == base.report.overall.summary()
    assert fast.makespan_cycles == base.makespan_cycles
    assert fast.l2_miss_rate == base.l2_miss_rate
    assert fast.dram_bytes == base.dram_bytes


def _tolerance_errors(base, fast):
    errors = {"makespan": abs(fast.makespan_cycles / base.makespan_cycles - 1)}
    for spec in (TENANT_A, TENANT_B):
        tb = base.report.tenant(spec.name)
        tf = fast.report.tenant(spec.name)
        errors[f"{spec.name}_mean"] = abs(tf.mean_ms / tb.mean_ms - 1)
        errors[f"{spec.name}_p99"] = abs(tf.p99_ms / tb.p99_ms - 1)
    return errors


def test_serve_replay_speedup(benchmark, emit):
    # Bitwise control: one tenant, no contention, replay must be invisible.
    control_base, __ = _timed(CONTROL, replay=False)
    control_fast, __ = _timed(CONTROL, replay=True)
    assert control_fast.replayed > 0
    _assert_bitwise(control_base, control_fast)

    # The contended study, both paths.
    base, t_base = _timed(STUDY, replay=False)
    fast, t_fast = _timed(STUDY, replay=True)
    speedup = t_base / t_fast
    errors = _tolerance_errors(base, fast)
    parity_ok = (
        fast.completed == base.completed
        and errors["makespan"] < 0.05
        and all(err < 0.10 for key, err in errors.items() if key.endswith("_mean"))
        and all(err < 0.15 for key, err in errors.items() if key.endswith("_p99"))
    )

    benchmark.extra_info["requests_per_tenant"] = REQUESTS
    benchmark.extra_info["baseline_s"] = t_base
    benchmark.extra_info["replay_s"] = t_fast
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["replayed_requests"] = fast.replayed
    benchmark.extra_info["completed"] = fast.completed
    benchmark.extra_info["tolerance_errors"] = {k: round(v, 6) for k, v in errors.items()}
    benchmark.extra_info["parity_ok"] = bool(parity_ok)
    benchmark.extra_info["uncontended_bitwise_ok"] = True  # _assert_bitwise passed

    # The recorded timing sample: a fresh replay-path run (traces rebuild —
    # this is the number a user sees end to end, recording included).
    benchmark.pedantic(lambda: simulate_serving(STUDY, replay=True), rounds=1, iterations=1)

    rows = []
    for name in (TENANT_A.name, TENANT_B.name):
        tb, tf = base.report.tenant(name), fast.report.tenant(name)
        rows.append(
            (
                name,
                f"{tb.mean_ms:.2f}",
                f"{tf.mean_ms:.2f}",
                f"{tb.p99_ms:.2f}",
                f"{tf.p99_ms:.2f}",
            )
        )
    text = format_table(
        ["tenant", "mean base", "mean replay", "p99 base", "p99 replay"],
        rows,
        title=(
            f"two-tenant serving study ({REQUESTS} req/tenant, Poisson {QPS:.0f} QPS): "
            f"baseline {t_base:.2f}s vs replay {t_fast:.2f}s = {speedup:.1f}x "
            f"({fast.replayed}/{fast.completed} requests trace-replayed)"
        ),
    )
    emit("serve_replay_speedup", text)

    assert parity_ok, f"contended replay drifted beyond tolerance: {errors}"
    # In-run regression floor (CI re-checks from the JSON); the full-size
    # study on a quiet machine is >= 5x.
    assert speedup >= 3.0, f"trace replay only {speedup:.1f}x over the recording path"
