"""Figure 3: systolic vs vector spatial arrays (frequency / area / power).

Paper anchors: 256-PE systolic 1.89 GHz / 120 kum^2; vector 0.69 GHz /
67 kum^2; 2.7x frequency, 1.8x area, 3.0x power.
"""

import pytest

from benchmarks.conftest import once
from repro.eval.experiments import run_fig3
from repro.eval.report import format_table


def test_fig3_spatial_array_tradeoffs(benchmark, emit, runner):
    result = once(benchmark, lambda: runner.run(run_fig3), runner=runner)

    rows = [
        (r.name, r.tile_shape, r.frequency_ghz, r.area_kum2, r.power_mw)
        for r in result.rows
    ]
    text = format_table(
        ["design", "tile", "freq (GHz)", "area (kum^2)", "power @500MHz (mW)"],
        rows,
        title="Figure 3: spatial array design points (256 PEs)",
    )
    text += (
        f"\nratios systolic/vector: freq={result.freq_ratio:.2f}x"
        f" (paper {result.paper_freq_ratio}x),"
        f" area={result.area_ratio:.2f}x (paper {result.paper_area_ratio}x),"
        f" power={result.power_ratio:.2f}x (paper {result.paper_power_ratio}x)"
    )
    emit("fig3_systolic_vs_vector", text)

    assert result.freq_ratio == pytest.approx(result.paper_freq_ratio, rel=0.05)
    assert result.area_ratio == pytest.approx(result.paper_area_ratio, rel=0.05)
    assert result.power_ratio == pytest.approx(result.paper_power_ratio, rel=0.05)
