"""Telemetry overhead guard: tracing must be ~free when off, cheap when on.

The two-tenant serving study (squeezenet + mobilenetv2 pinned to their own
tiles, Poisson traffic) runs three ways through the trace-replay fast path —
the engine's quickest configuration, where any fixed per-request telemetry
cost is proportionally largest:

* **baseline** — no observability arguments at all,
* **disabled** — ``NULL_TRACER`` / ``NULL_METRICS`` passed explicitly (the
  null-object singletons every instrumented call site dispatches through),
* **enabled**  — a real :class:`Tracer` plus a :class:`MetricStream`
  snapshotting every 8 completions.

Each variant is timed as the minimum over interleaved rounds (after a shared
warm-up) so machine drift hits all three equally.  The guard asserts the
disabled path is within measurement noise of the baseline and the enabled
path costs at most 10%; CI re-checks both bounds from ``BENCH_obs.json``.
"""

import time

from benchmarks.conftest import FAST
from repro.core.config import default_config
from repro.obs.export import to_chrome_trace, validate_chrome_trace
from repro.obs.metrics import NULL_METRICS, MetricStream
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.serve import TenantSpec, TrafficProfile, simulate_serving

REQUESTS = 12 if FAST else 32
QPS = 60.0
SEED = 0
ROUNDS = 3

#: the disabled path must be statistically indistinguishable from baseline;
#: min-of-N on a shared machine still jitters a few percent, so "noise" is
#: floored at 5% — and widened to the baseline's own observed round-to-round
#: spread when the machine is noisier than that (identical code can't be
#: resolved below the jitter of repeated identical runs).
NOISE_BOUND = 0.05
ENABLED_BOUND = 0.10


def _tenant(name, model, pin):
    return TenantSpec(
        name=name,
        model=model,
        arrival="poisson",
        rate_qps=QPS,
        num_requests=REQUESTS,
        input_hw=32,
        slo_ms=10.0,
        pin_tile=pin,
    )


STUDY = TrafficProfile(
    tenants=(_tenant("teamA", "squeezenet", 0), _tenant("teamB", "mobilenetv2", 1)),
    num_tiles=2,
    seed=SEED,
)


def _run(tracer=None, metrics=None):
    return simulate_serving(STUDY, replay=True, tracer=tracer, metrics=metrics)


def _variants():
    clock = default_config().clock_ghz
    return {
        "baseline": lambda: _run(),
        "disabled": lambda: _run(tracer=NULL_TRACER, metrics=NULL_METRICS),
        "enabled": lambda: _run(
            tracer=Tracer.for_cycles(clock, run_id="bench-obs", seed=SEED),
            metrics=MetricStream(every=8),
        ),
    }


def test_obs_overhead(benchmark, emit):
    variants = _variants()
    for fn in variants.values():
        fn()  # warm-up: imports, model builds, trace recording machinery

    # Rotate the order each round: machines drift over tens of seconds, and a
    # fixed order would bill that drift to whichever variant always runs last.
    # With as many rounds as variants, every variant gets every position once,
    # so the per-variant minimum is position-neutral.
    order = list(variants)
    times = {name: [] for name in variants}
    for round_no in range(ROUNDS):
        for offset in range(len(order)):
            name = order[(round_no + offset) % len(order)]
            t0 = time.perf_counter()
            variants[name]()
            times[name].append(time.perf_counter() - t0)

    best = {name: min(samples) for name, samples in times.items()}
    overhead_disabled = best["disabled"] / best["baseline"] - 1.0
    overhead_enabled = best["enabled"] / best["baseline"] - 1.0
    # Baseline-vs-itself spread is the resolution limit of this machine.
    baseline_spread = max(times["baseline"]) / best["baseline"] - 1.0
    disabled_bound = max(NOISE_BOUND, baseline_spread)
    enabled_bound = max(ENABLED_BOUND, baseline_spread)

    # One enabled run kept around to sanity-check what the 10% actually buys.
    tracer = Tracer.for_cycles(default_config().clock_ghz, run_id="bench-obs", seed=SEED)
    metrics = MetricStream(every=8)
    result = _run(tracer=tracer, metrics=metrics)
    assert tracer.span_count() == result.completed
    assert validate_chrome_trace(to_chrome_trace(tracer)) == []
    assert metrics.snapshots, "no streaming snapshot taken while in flight"

    benchmark.extra_info["requests_per_tenant"] = REQUESTS
    benchmark.extra_info["rounds"] = ROUNDS
    benchmark.extra_info["baseline_s"] = best["baseline"]
    benchmark.extra_info["disabled_s"] = best["disabled"]
    benchmark.extra_info["enabled_s"] = best["enabled"]
    benchmark.extra_info["overhead_disabled"] = overhead_disabled
    benchmark.extra_info["overhead_enabled"] = overhead_enabled
    benchmark.extra_info["baseline_spread"] = baseline_spread
    benchmark.extra_info["disabled_bound"] = disabled_bound
    benchmark.extra_info["enabled_bound"] = enabled_bound
    benchmark.extra_info["spans"] = tracer.span_count()
    benchmark.extra_info["events"] = len(tracer.events())
    benchmark.extra_info["snapshots"] = len(metrics.snapshots)

    # The recorded timing sample: the enabled path, the one users pay for.
    benchmark.pedantic(variants["enabled"], rounds=1, iterations=1)

    emit(
        "obs_overhead",
        "\n".join(
            [
                f"telemetry overhead, two-tenant replay study "
                f"({REQUESTS} req/tenant, min of {ROUNDS}):",
                f"  baseline (no obs args) : {best['baseline']:.3f}s",
                f"  disabled (null objects): {best['disabled']:.3f}s "
                f"({overhead_disabled:+.1%})",
                f"  enabled (trace+metrics): {best['enabled']:.3f}s "
                f"({overhead_enabled:+.1%})",
                f"  enabled run emitted {len(tracer.events())} events "
                f"({tracer.span_count()} spans) and {len(metrics.snapshots)} "
                f"metric snapshots",
                f"  machine noise (baseline vs itself): {baseline_spread:+.1%}",
            ]
        ),
    )

    assert overhead_disabled <= disabled_bound, (
        f"null-object telemetry costs {overhead_disabled:.1%} over baseline "
        f"(bound: {disabled_bound:.0%}) — the disabled path must stay free"
    )
    assert overhead_enabled <= enabled_bound, (
        f"enabled telemetry costs {overhead_enabled:.1%} over baseline "
        f"(bound: {enabled_bound:.0%})"
    )
