"""Structural-simulation backends: vectorized wavefront vs per-PE scalar.

The vectorized backend advances the whole array per cycle with numpy slab
operations and must be bitwise-identical to the scalar reference while
being at least an order of magnitude faster on a 32x32 array — the margin
that makes large-array sweeps and the structural-check execution mode
affordable.
"""

import time

import numpy as np

from benchmarks.conftest import once
from repro.core.config import GemminiConfig
from repro.core.spatial_array import StructuralMesh


def _mesh_config(dim: int, tile: int) -> GemminiConfig:
    return GemminiConfig(
        mesh_rows=dim // tile,
        mesh_cols=dim // tile,
        tile_rows=tile,
        tile_cols=tile,
        sp_capacity_bytes=dim * 256,
        sp_banks=1,
        acc_capacity_bytes=dim * 4 * 64,
        acc_banks=1,
    )


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def measure(dim: int = 32) -> list[tuple]:
    """Scalar vs vectorized wall time for a dim x dim WS and OS matmul."""
    rng = np.random.default_rng(0xBEEF)
    rows = []
    for tile in (1, dim):
        mesh = StructuralMesh(_mesh_config(dim, tile))
        a = rng.integers(-8, 8, size=(dim, dim))
        b = rng.integers(-8, 8, size=(dim, dim))
        d = rng.integers(-8, 8, size=(dim, dim))

        out_s, cyc_s = mesh.run_ws(a, b, d, backend="scalar")
        out_v, cyc_v = mesh.run_ws(a, b, d, backend="vectorized")
        assert np.array_equal(out_s, out_v) and cyc_s == cyc_v

        # Best-of-N on both sides: the ratio gates CI, so keep scheduler
        # noise out of both the numerator and the denominator.
        t_scalar = min(_time(lambda: mesh.run_ws(a, b, d, backend="scalar")) for __ in range(2))
        t_vector = min(
            _time(lambda: mesh.run_ws(a, b, d, backend="vectorized")) for __ in range(3)
        )
        rows.append((f"WS {dim}x{dim} tile {tile}x{tile}", t_scalar, t_vector))

        t_scalar = min(_time(lambda: mesh.run_os(a, b, d, backend="scalar")) for __ in range(2))
        t_vector = min(
            _time(lambda: mesh.run_os(a, b, d, backend="vectorized")) for __ in range(3)
        )
        rows.append((f"OS {dim}x{dim} tile {tile}x{tile}", t_scalar, t_vector))
    return rows


def test_vectorized_backend_speedup(benchmark, emit):
    rows = once(benchmark, measure)

    from repro.eval.report import format_table

    text = format_table(
        ["simulation", "scalar (ms)", "vectorized (ms)", "speedup"],
        [
            (name, f"{ts * 1e3:.1f}", f"{tv * 1e3:.2f}", f"{ts / tv:.1f}x")
            for name, ts, tv in rows
        ],
        title="Structural backend: scalar vs vectorized wavefront",
    )
    emit("backend_speedup", text)

    # Acceptance: a 32x32 structural matmul must be >=10x faster vectorized.
    for name, t_scalar, t_vector in rows:
        assert t_scalar / t_vector >= 10.0, (
            f"{name}: vectorized backend only {t_scalar / t_vector:.1f}x faster"
        )
