"""Figure 4: private-TLB miss rate over one full ResNet50 inference.

Paper: the miss rate "occasionally climbs to 20-30% of recent requests, due
to the tiled nature of DNN workloads".
"""

from benchmarks.conftest import INPUT_HW, once
from repro.eval.experiments import run_fig4
from repro.eval.report import format_series


def test_fig4_tlb_miss_trace(benchmark, emit, runner):
    result = once(benchmark, lambda: runner.run(run_fig4, input_hw=INPUT_HW), runner=runner)

    text = format_series("private TLB miss rate over ResNet50", result.trace)
    text += (
        f"\npeak={result.peak_miss_rate:.2f} (paper: spikes to "
        f"{result.paper_peak_range[0]:.2f}-{result.paper_peak_range[1]:.2f}), "
        f"mean={result.mean_miss_rate:.3f}, "
        f"requests={result.total_requests}, cycles={result.total_cycles / 1e6:.1f}M"
    )
    emit("fig4_tlb_miss_trace", text)

    # Shape claim: spiky trace with peaks an order of magnitude over the mean.
    assert result.peak_miss_rate >= 0.15
    assert result.peak_miss_rate > 2 * result.mean_miss_rate
