"""Design-space exploration smoke: random vs evolutionary at equal budget.

Runs both strategies through the same :class:`~repro.dse.Explorer` on the
8x8-max example space, emits the evolutionary Pareto front, and checks the
search invariants the subsystem guarantees: non-empty front, deterministic
seeded search, and the adaptive strategy's hypervolume at least matching
random search's under a shared reference.
"""

from benchmarks.conftest import once
from repro.dse import (
    EvaluationSpec,
    Explorer,
    front_table,
    gemmini_space,
    make_strategy,
    shared_hypervolume,
)

BUDGET = 30
SEED = 0


def _explore(runner):
    space = gemmini_space(max_dim=8)
    results = {}
    for name in ("random", "evolutionary"):
        strategy = make_strategy(name, space, seed=SEED)
        explorer = Explorer(space, strategy, EvaluationSpec(), budget=BUDGET, runner=runner)
        results[name] = explorer.explore()
    return results


def test_dse_random_vs_evolutionary(benchmark, emit, runner):
    results = once(benchmark, lambda: _explore(runner), runner=runner)

    evo, rnd = results["evolutionary"], results["random"]
    hv_rnd, hv_evo = shared_hypervolume([rnd, evo])
    text = front_table(evo, extra_metrics=("fmax_ghz", "throughput_gmacs"))
    text += (
        f"\nshared-reference hypervolume: evolutionary {hv_evo:.6g} "
        f"vs random {hv_rnd:.6g} at budget {BUDGET}"
        f"\n{runner.stats()}"
    )
    emit("dse_random_vs_evolutionary", text)

    assert evo.front and rnd.front, "search produced an empty Pareto front"
    assert evo.evaluations <= BUDGET and rnd.evaluations <= BUDGET
    assert hv_evo >= hv_rnd * 0.95, "evolutionary search fell behind random search"
