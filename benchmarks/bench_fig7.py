"""Figure 7: speedup over the in-order CPU baseline, five DNNs.

Paper anchors (with the on-the-fly im2col unit, 1 GHz): ResNet50 2,670x /
22.8 FPS; SqueezeNet 1,760x; MobileNetV2 127x / 18.7 FPS; BERT 144x;
AlexNet 79.3 FPS.  Without the unit, a BOOM host beats a Rocket host by
~2.0x across CNNs because the host performs im2col.
"""

from benchmarks.conftest import BERT_SEQ, INPUT_HW, once
from repro.eval.experiments import run_fig7
from repro.eval.report import format_table


def test_fig7_speedups(benchmark, emit, runner):
    result = once(
        benchmark,
        lambda: runner.run(run_fig7, input_hw=INPUT_HW, seq=BERT_SEQ, host_sweep=True),
        runner=runner,
    )

    rows = []
    for r in result.rows:
        paper_speedup = result.paper_speedups.get(r.model, float("nan"))
        paper_fps = result.paper_fps.get(r.model, float("nan"))
        rows.append(
            (
                r.model,
                f"{r.speedup_im2col:.0f}x",
                f"{paper_speedup:.0f}x" if paper_speedup == paper_speedup else "-",
                f"{r.fps():.1f}",
                f"{paper_fps:.1f}" if paper_fps == paper_fps else "-",
                f"{r.speedup_cpu_im2col_rocket:.0f}x" if r.accel_cpu_im2col_rocket_cycles else "-",
                f"{r.speedup_cpu_im2col_boom:.0f}x" if r.accel_cpu_im2col_boom_cycles else "-",
                f"{r.boom_host_gain:.2f}" if r.boom_host_gain else "-",
            )
        )
    text = format_table(
        [
            "model",
            "speedup(+im2col)",
            "paper",
            "fps@1GHz",
            "paper fps",
            "cpu-im2col rocket",
            "cpu-im2col boom",
            "boom gain",
        ],
        rows,
        title="Figure 7: speedup vs in-order Rocket baseline",
    )
    text += "\n(paper boom-host gain without im2col unit: ~2.0x across CNNs)"
    emit("fig7_speedups", text)

    by_model = {r.model: r for r in result.rows}
    # Shape claims: huge CNN speedups, ordering, and host sensitivity.
    assert by_model["resnet50"].speedup_im2col > 1000
    assert by_model["squeezenet"].speedup_im2col > 1000
    assert by_model["bert"].speedup_im2col < 500  # CPU-resident ops bound it
    assert (
        by_model["mobilenetv2"].speedup_im2col < by_model["resnet50"].speedup_im2col
    )
    for model in ("resnet50", "alexnet", "squeezenet", "mobilenetv2"):
        row = by_model[model]
        assert row.accel_cpu_im2col_rocket_cycles > row.accel_im2col_cycles
        assert 1.3 < row.boom_host_gain < 2.5
