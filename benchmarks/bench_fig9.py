"""Figure 9: SoC memory partitioning, single- and dual-core ResNet50.

Paper claims: single-core, moving 1 MB of extra SRAM into the scratchpad
(BigSP) is the best use (convs gain ~10%, matmuls ~1%, resadds none);
dual-core, the same SRAM is better spent on the shared L2 (BigL2: resadds
+22%, overall +8.0%, L2 miss rate -7.1pp) because each core's residual
addition evicts the layer the other core is about to consume.
"""

from benchmarks.conftest import FAST, INPUT_HW, once
from repro.eval.experiments import run_fig9
from repro.eval.report import format_table


def test_fig9_memory_partitioning(benchmark, emit, runner):
    result = once(benchmark, lambda: runner.run(run_fig9, input_hw=INPUT_HW), runner=runner)

    rows = []
    for run in result.runs:
        rows.append(
            (
                run.config_name,
                run.cores,
                f"{run.total_cycles / 1e6:.2f}M",
                f"{result.speedup(run.config_name, run.cores):.3f}",
                f"{result.speedup(run.config_name, run.cores, 'conv'):.3f}",
                f"{result.speedup(run.config_name, run.cores, 'matmul'):.3f}",
                f"{result.speedup(run.config_name, run.cores, 'resadd'):.3f}",
                f"{run.l2_miss_rate:.3f}",
            )
        )
    text = format_table(
        ["config", "cores", "cycles", "overall", "conv", "matmul", "resadd", "L2 miss"],
        rows,
        title="Figure 9: performance normalized to Base (per core count)",
    )
    miss_drop = result.run("Base", 2).l2_miss_rate - result.run("BigL2", 2).l2_miss_rate
    text += (
        f"\ndual-core BigL2: overall {result.speedup('BigL2', 2):.3f} (paper 1.080), "
        f"L2 miss -{100 * miss_drop:.1f}pp (paper -7.1pp); "
        f"dual-core BigSP: {result.speedup('BigSP', 2):.3f} (paper 1.042)"
    )
    emit("fig9_memory_partitioning", text)

    # Shape claims that must hold at full scale:
    # 1. dual-core runs are slower than single-core (shared-resource contention)
    for name in ("Base", "BigSP", "BigL2"):
        assert result.run(name, 2).total_cycles > result.run(name, 1).total_cycles
    # 2. dual-core: the extra SRAM is better spent on the shared L2.
    # (Only asserted at full scale: at reduced resolution the residual
    # tensors fit even the 1 MB L2, so the BigL2 advantage vanishes.)
    if not FAST:
        assert result.speedup("BigL2", 2) >= result.speedup("BigSP", 2) - 0.01
    # 3. BigL2 cuts the dual-core L2 miss rate (paper: -7.1pp)
    assert miss_drop > 0.03
    # 4. matmul layers benefit from the larger scratchpad
    assert result.speedup("BigSP", 2, "matmul") > 1.0
