"""Ablation: DMA bus width (the Section III-C SoC-level parameter).

"Additional SoC-level parameters include bus widths between accelerators
and host CPUs" — this sweep quantifies that axis on a memory-bound kernel
(residual addition) and a compute-bound one (dense matmul).
"""

from dataclasses import replace

from benchmarks.conftest import once
from repro.core.config import default_config
from repro.eval.report import format_table
from repro.soc.soc import make_soc
from repro.sw.kernels import TileKernels

WIDTHS = (8, 16, 32, 64)


def bench_point(width: int) -> tuple:
    """One sweep point (module-level so the runner can fan it out)."""
    cfg = replace(default_config().with_im2col(True), dma_bus_bytes=width)
    soc = make_soc(gemmini=cfg)
    soc.tile.vm.alloc(32 << 20, "arena")
    kernels = TileKernels(soc.tile)
    base = 0x1000_0000
    resadd = kernels.run_resadd(base, base + (8 << 20), base + (16 << 20), 1 << 20)
    matmul = kernels.run_matmul(base, base + (8 << 20), base + (16 << 20), 512, 512, 512)
    return (width, resadd.cycles, matmul.cycles)


def test_ablation_dma_bus_width(benchmark, emit, runner):
    rows = once(benchmark, lambda: runner.map(bench_point, WIDTHS, label="ablation_bus"), runner=runner)
    text = format_table(
        ["bus (B/cycle)", "resadd 1M elems (cycles)", "matmul 512^3 (cycles)"],
        [(w, f"{r:.0f}", f"{m:.0f}") for w, r, m in rows],
        title="Ablation: DMA bus width",
    )
    emit("ablation_bus_width", text)

    resadds = [r for __, r, __m in rows]
    matmuls = [m for __, __r, m in rows]
    # Wider buses are never slower, and at least one kernel class sees a
    # real gain; past the DRAM bandwidth the memory-bound kernel saturates
    # (the flattening is the point of the sweep).
    assert resadds == sorted(resadds, reverse=True)
    assert matmuls == sorted(matmuls, reverse=True)
    assert max(resadds[0] / resadds[-1], matmuls[0] / matmuls[-1]) > 1.05
