"""Ablation: weight-stationary vs output-stationary dataflow cycle costs.

DESIGN.md calls out the run-time-selectable dataflow as a template design
choice (Table I "Dataflows: multiple").  WS avoids the OS drain phase when
results stream to the accumulator; OS wins nothing on these dense shapes
but is required for mappings that keep C resident.
"""

from benchmarks.conftest import once
from repro.core.config import Dataflow, default_config
from repro.core.spatial_array import SpatialArrayModel
from repro.eval.report import format_table

SHAPES = [
    (64, 64, 64),
    (256, 256, 256),
    (1024, 256, 64),
    (64, 1024, 1024),
    (12544, 147, 64),   # ResNet50 stem as im2col matmul
    (3136, 576, 64),    # ResNet50 stage-1 3x3
]


def dataflow_rows() -> list[tuple]:
    """Cycle costs for every shape (module-level so the runner can cache it)."""
    model = SpatialArrayModel(default_config())
    rows = []
    for m, k, n in SHAPES:
        ws = model.matmul_cost(m, k, n, Dataflow.WS).total
        os_cost = model.matmul_cost(m, k, n, Dataflow.OS).total
        rows.append((f"{m}x{k}x{n}", ws, os_cost, os_cost / ws))
    return rows


def test_ablation_dataflow(benchmark, emit, runner):
    rows = once(benchmark, lambda: runner.run(dataflow_rows), runner=runner)
    text = format_table(
        ["shape (MxKxN)", "WS cycles", "OS cycles", "OS/WS"],
        rows,
        title="Ablation: dataflow cycle costs on the 16x16 array",
    )
    emit("ablation_dataflow", text)

    for __, ws, os_cost, ratio in rows:
        assert os_cost >= ws  # OS pays the drain on dense shapes
        assert ratio < 3.0
