"""Figure 6: area breakdown of the accelerator with its host CPU.

Paper (Intel 22FFL): spatial array 116k (11.3%), scratchpad 544k (52.9%),
accumulator 146k (14.2%), Rocket CPU 171k (16.6%), total 1,029 kum^2.
"""

import pytest

from benchmarks.conftest import once
from repro.eval.experiments import run_fig6
from repro.eval.report import format_table


def test_fig6_area_breakdown(benchmark, emit, runner):
    result = once(benchmark, lambda: runner.run(run_fig6), runner=runner)
    breakdown = result.breakdown

    rows = []
    for name, um2, pct in breakdown.rows():
        paper = result.paper_rows.get(name)
        paper_txt = f"{paper[0] / 1000:.0f}k ({paper[1]}%)" if paper else "-"
        rows.append((name, f"{um2 / 1000:.1f}k", f"{pct:.1f}%", paper_txt))
    text = format_table(
        ["component", "area", "share", "paper"],
        rows,
        title="Figure 6: area breakdown (16x16 array, 256KB SP, 64KB ACC, Rocket)",
    )
    text += f"\ntotal {breakdown.total / 1000:.0f}k um^2 (paper {result.paper_total / 1000:.0f}k)"
    emit("fig6_area_breakdown", text)

    assert breakdown.total == pytest.approx(result.paper_total, rel=0.02)
    assert 100 * breakdown.fraction("scratchpad") == pytest.approx(52.9, abs=1.5)
