"""Schedule auto-tuner benchmark: cycle win over greedy + warm-start wall win.

One cold ``tune_model`` pass over squeezenet's matmul dispatch shapes is the
timed sample (the price a user pays once per (model, config)).  The bench
then demonstrates what that purchase buys:

* **simulated-cycle improvement** — per shape, the tuned schedule is never
  worse than the greedy heuristic (the shortlist always includes greedy),
  and the shape total must strictly improve;
* **cross-process warm start** — a second tuner pass against the same cache
  file serves every shape from the cache (shapes_cached == shapes_total)
  and must be faster than the cold pass by an order of magnitude;
* **end-to-end dispatch** — a full model run against the warmed cache hits
  on every schedule lookup (hits == lookups) and its total simulated cycles
  must not regress against the greedy-only run.

Everything lands in ``BENCH_tune_speedup.json`` ``extra_info`` for CI, and
the wall time joins the run ledger for ``gemmini-repro regress`` gating.
"""

import os
import tempfile
import time

from benchmarks.conftest import INPUT_HW, once
from repro.core.config import default_config
from repro.core.generator import SoftwareParams
from repro.models import build_model
from repro.soc.soc import make_soc
from repro.sw.compiler import compile_graph
from repro.sw.runtime import Runtime
from repro.sw.schedule_cache import NULL_SCHEDULE_CACHE, ScheduleCache
from repro.sw.tune import tune_model

MODEL = "squeezenet"
VERIFY_TOP_K = 4


def test_tune_speedup(benchmark, emit):
    config = default_config()
    graph = build_model(MODEL, input_hw=INPUT_HW)
    model = compile_graph(graph, SoftwareParams.from_config(config))
    cache_path = os.path.join(tempfile.mkdtemp(prefix="bench-tune-"),
                              "schedules.jsonl")

    def cold_tune():
        return tune_model(
            model, config, cache=ScheduleCache(cache_path),
            verify_top_k=VERIFY_TOP_K,
        )

    results = once(benchmark, cold_tune)
    assert results and not any(r.cached for r in results)
    assert all(r.tuned_cycles <= r.greedy_cycles for r in results), (
        "a tuned schedule costs more simulated cycles than greedy — "
        "the always-verify-greedy contract is broken"
    )
    greedy_total = sum(r.greedy_cycles for r in results)
    tuned_total = sum(r.tuned_cycles for r in results)
    improved = sum(1 for r in results if r.improvement > 0)
    improvement_pct = 100.0 * (1.0 - tuned_total / greedy_total)
    cold_wall_s = sum(r.wall_s for r in results)

    # Warm start: a second process-equivalent pass over the same cache file.
    t0 = time.perf_counter()
    warm = tune_model(
        model, config, cache=ScheduleCache(cache_path),
        verify_top_k=VERIFY_TOP_K,
    )
    warm_wall_s = time.perf_counter() - t0
    assert all(r.cached for r in warm), "second tuner pass re-tuned shapes"
    assert [r.best for r in warm] == [r.best for r in results]
    assert warm_wall_s < cold_wall_s, (
        f"warm tuner pass ({warm_wall_s:.3f}s) not faster than cold "
        f"({cold_wall_s:.3f}s)"
    )

    # End-to-end: the runtime dispatching against the warmed cache must hit
    # on every lookup and never regress the model's total simulated cycles.
    def run_model(schedule_cache):
        soc = make_soc(gemmini=config)
        runtime = Runtime(soc.tile, model, schedule_cache=schedule_cache)
        return runtime.run().total_cycles

    greedy_e2e = run_model(NULL_SCHEDULE_CACHE)
    warm_cache = ScheduleCache(cache_path)
    tuned_e2e = run_model(warm_cache)
    assert warm_cache.stats.lookups > 0
    assert warm_cache.stats.hits == warm_cache.stats.lookups, (
        f"warm run missed: {warm_cache.stats.to_dict()}"
    )
    assert improvement_pct > 0.0, (
        "tuning found no simulated-cycle win over greedy on any shape"
    )
    # Per-shape wins are guaranteed; whole-model cycles also fold in L2 and
    # host effects, so allow sub-percent slack rather than bitwise ordering.
    assert tuned_e2e <= greedy_e2e * 1.01, (
        f"tuned end-to-end run regressed: {tuned_e2e:.0f} vs {greedy_e2e:.0f}"
    )

    benchmark.extra_info.update(
        {
            "model": MODEL,
            "input_hw": INPUT_HW,
            "shapes": len(results),
            "shapes_improved": improved,
            "greedy_cycles_total": greedy_total,
            "tuned_cycles_total": tuned_total,
            "improvement_pct": improvement_pct,
            "cold_wall_s": cold_wall_s,
            "warm_wall_s": warm_wall_s,
            "warm_speedup": cold_wall_s / max(warm_wall_s, 1e-9),
            "greedy_e2e_cycles": greedy_e2e,
            "tuned_e2e_cycles": tuned_e2e,
            "e2e_improvement_pct": 100.0 * (1.0 - tuned_e2e / greedy_e2e),
            "warm_lookups": warm_cache.stats.lookups,
            "warm_hits": warm_cache.stats.hits,
        }
    )

    emit(
        "tune_speedup",
        "\n".join(
            [
                f"schedule auto-tuner, {MODEL}@{INPUT_HW} "
                f"(verify_top_k={VERIFY_TOP_K}):",
                f"  shapes tuned           : {len(results)} "
                f"({improved} improved over greedy)",
                f"  dispatch cycles        : {greedy_total:,.0f} greedy -> "
                f"{tuned_total:,.0f} tuned ({improvement_pct:+.2f}%)",
                f"  end-to-end model cycles: {greedy_e2e:,.0f} -> "
                f"{tuned_e2e:,.0f} "
                f"({100.0 * (1.0 - tuned_e2e / greedy_e2e):+.2f}%)",
                f"  cold tune wall         : {cold_wall_s:.2f}s",
                f"  warm-start wall        : {warm_wall_s:.3f}s "
                f"({cold_wall_s / max(warm_wall_s, 1e-9):,.0f}x faster, "
                f"{warm_cache.stats.hits}/{warm_cache.stats.lookups} "
                "dispatch hits)",
            ]
        ),
    )
