"""Table I: the DNN accelerator generator comparison matrix.

Regenerates the feature matrix and verifies the Gemmini column against the
implemented template (every 'yes' is backed by code in this repository).
"""

from benchmarks.conftest import once
from repro.eval.tables import TABLE_I, format_table_i, gemmini_column_from_code


def test_table1(benchmark, emit):
    def run():
        derived = gemmini_column_from_code()
        for prop, value in derived.items():
            assert TABLE_I[prop]["Gemmini"] == value
        return format_table_i()

    text = once(benchmark, run)
    emit("table1", text)
