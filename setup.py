"""Legacy setup shim (the offline environment's pip lacks the `wheel`
package PEP 517 editable installs need; metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
