#!/usr/bin/env python3
"""Design-space exploration: the generator's reason to exist.

A thin client of the :mod:`repro.dse` subsystem.  First it reproduces the
classic systolic-vs-vector sweep — a declarative two-axis space (array
size x tile shape) searched exhaustively — then it lets an evolutionary
search loose on the full template space and prints the Pareto front over
latency / area / power, the quantitative comparison the paper argues
existing generators cannot make.  A final structural search ranges over
*whole heterogeneous fleets* (big/little tile mixes via
:func:`repro.dse.mix_space`), showing the component-based design axis.

Every evaluation fans out across cores through
:class:`repro.eval.runner.ExperimentRunner` (set ``REPRO_WORKERS=1`` to
force serial execution) and is content-hash cached, so re-running the
example is nearly free.  ``REPRO_FAST=1`` shrinks the search budgets for
smoke runs.
"""

import os

from repro.dse import (
    Categorical,
    Constraint,
    EvaluationSpec,
    Explorer,
    ParamSpace,
    front_table,
    gemmini_space,
    make_strategy,
    mix_space,
    point_label,
)
from repro.eval.report import format_table

FAST = bool(int(os.environ.get("REPRO_FAST", "0")))


def classic_space() -> ParamSpace:
    """The historic 9-point sweep, declared instead of hand-rolled."""
    return ParamSpace(
        name="systolic-vs-vector",
        axes=(
            Categorical("dim", (8, 16, 32)),
            Categorical("tile", (1, 2, 4, 8, 16, 32)),
        ),
        constraints=(
            Constraint("tile-divides-dim", lambda p: p["dim"] % p["tile"] == 0),
        ),
    )


def main() -> None:
    # -- 1. the exhaustive two-axis sweep (grid strategy) --------------- #
    space = classic_space()
    explorer = Explorer(
        space,
        make_strategy("grid", space),
        EvaluationSpec(),  # one ResNet50 conv layer; latency/area/power
        budget=space.size(),
    )
    result = explorer.explore()
    rows = []
    for e in sorted(result.trace, key=lambda e: (e.point_dict["dim"], e.point_dict["tile"])):
        p = e.point_dict
        rows.append(
            (
                f"{p['dim']}x{p['dim']}",
                f"{p['tile']}x{p['tile']}",
                f"{e.metric('fmax_ghz'):.2f}",
                f"{e.metric('area_mm2') * 1000:.0f}k",
                f"{e.metric('power_mw'):.0f}",
                f"{e.metric('throughput_gmacs'):.0f}",
                "*" if e in result.front else "",
            )
        )
    print(
        format_table(
            ["PEs", "tile", "fmax (GHz)", "area (um^2)", "power (mW)", "GMAC/s", "Pareto"],
            rows,
            title="Design space: conv throughput at each array's own fmax",
        )
    )
    print(
        "\nReading the table: fully pipelined arrays (tile 1x1) clock ~2.7x"
        "\nhigher than fully combinational ones (tile NxN); the pipeline"
        "\nregisters buy that throughput at an area and power premium at"
        "\nevery size, so under latency/area/power every geometry here is"
        "\nPareto-optimal — a pure trade-off curve between the TPU-like and"
        "\nNVDLA-like extremes.  Real domination appears once the search"
        "\nbelow adds the memory, banking and dataflow axes."
    )

    # -- 2. evolutionary search over the full template space ------------ #
    space = gemmini_space(max_dim=32)
    explorer = Explorer(
        space,
        make_strategy("evolutionary", space, seed=0),
        EvaluationSpec(),
        budget=20 if FAST else 60,
    )
    result = explorer.explore()
    print()
    print(front_table(result))
    print(
        f"\nevolutionary search: {result.evaluations} of "
        f"~{space.cartesian_size} candidate designs evaluated, "
        f"{len(result.front)} Pareto-optimal, hypervolume {result.hypervolume:.6g}"
    )

    # -- 3. structural search: heterogeneous big/little fleets ---------- #
    fleet_space = mix_space(("big", "little"), max_tiles=2 if FAST else 4)
    explorer = Explorer(
        fleet_space,
        make_strategy("grid", fleet_space),
        EvaluationSpec(objectives=("latency_ms", "area_mm2", "throughput_gmacs")),
        budget=fleet_space.size(),
    )
    result = explorer.explore()
    rows = [
        (
            point_label(e.point_dict).removeprefix("components="),
            f"{e.metric('area_mm2'):.2f}",
            f"{e.metric('latency_ms') * 1000:.0f}",
            f"{e.metric('throughput_gmacs'):.0f}",
        )
        for e in result.front
    ]
    print()
    print(
        format_table(
            ["tile mix", "fleet area (mm^2)", "latency (us)", "fleet GMAC/s"],
            rows,
            title="Pareto-optimal heterogeneous fleets (components axis)",
        )
    )
    print(
        f"\nstructural search: every point is a whole SoC design — "
        f"{len(result.front)} of {result.evaluations} fleet mixes are "
        "Pareto-optimal under latency/area/throughput.  Little-only fleets "
        "win on area, big tiles on single-inference latency, mixed fleets "
        "trade between them.  Same via the CLI: gemmini-repro dse --mix big "
        "--mix little."
    )
    print("Try `gemmini-repro dse --help` for strategies, budgets and constraints.")


if __name__ == "__main__":
    main()
