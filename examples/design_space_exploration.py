#!/usr/bin/env python3
"""Design-space exploration: the generator's reason to exist.

Sweeps the two-level spatial-array template between the TPU-like
(fully pipelined) and NVDLA-like (fully combinational) extremes plus array
sizes, and reports — for each point — achievable clock, area, power, and
delivered throughput on a representative convolution, combining the
physical models (Figure 3) with the performance model.  This is the
quantitative systolic-vs-vector comparison the paper argues existing
generators cannot make.

Every point is independent, so the sweep fans out across cores via
:class:`repro.eval.runner.ExperimentRunner` (set ``REPRO_WORKERS=1`` to
force serial execution).
"""

from repro.core import GemminiConfig
from repro.core.config import Dataflow
from repro.core.spatial_array import SpatialArrayModel
from repro.eval.report import format_table
from repro.eval.runner import ExperimentRunner
from repro.physical.area import spatial_array_area
from repro.physical.power import spatial_array_power_mw
from repro.physical.timing import max_frequency_ghz

#: ResNet50 stage-1 3x3 convolution as an im2col matmul.
CONV_SHAPE = (3136, 576, 64)


def sweep_points() -> list[dict]:
    """Every (array size, tile shape) point of the sweep, as config kwargs."""
    points = []
    for dim in (8, 16, 32):
        tile = 1
        while tile <= dim:
            points.append(
                {
                    "mesh_rows": dim // tile,
                    "mesh_cols": dim // tile,
                    "tile_rows": tile,
                    "tile_cols": tile,
                    "sp_capacity_bytes": 256 * 1024,
                    "acc_capacity_bytes": 64 * 1024,
                }
            )
            tile *= 2
    return points


def evaluate_point(params: dict) -> tuple:
    """Physical + performance metrics for one design point (one table row)."""
    config = GemminiConfig(**params)
    m, k, n = CONV_SHAPE
    freq = max_frequency_ghz(config)
    area = spatial_array_area(config)
    power = spatial_array_power_mw(config, frequency_ghz=freq)
    cost = SpatialArrayModel(config).matmul_cost(m, k, n, Dataflow.WS)
    seconds = cost.total / (freq * 1e9)
    throughput = m * k * n / seconds / 1e9  # GMAC/s
    return (
        f"{config.dim}x{config.dim}",
        f"{config.tile_rows}x{config.tile_cols}",
        f"{freq:.2f}",
        f"{area / 1000:.0f}k",
        f"{power:.0f}",
        f"{throughput:.0f}",
        f"{throughput / (area / 1000):.2f}",
    )


def explore(runner: ExperimentRunner | None = None) -> list[tuple]:
    """Evaluate the whole sweep, fanning points out across cores."""
    points = sweep_points()
    if runner is not None:
        return runner.map(evaluate_point, points, label="dse")
    with ExperimentRunner() as owned:
        return owned.map(evaluate_point, points, label="dse")


def main() -> None:
    rows = explore()
    print(
        format_table(
            [
                "PEs",
                "tile",
                "fmax (GHz)",
                "area (um^2)",
                "power (mW)",
                "GMAC/s",
                "GMAC/s per kum^2",
            ],
            rows,
            title="Design space: conv throughput at each array's own fmax",
        )
    )
    print(
        "\nReading the table: fully pipelined arrays (tile 1x1) clock ~2.7x"
        "\nhigher but spend ~1.8x the area; the best performance-per-area"
        "\npoint sits between the TPU-like and NVDLA-like extremes, which is"
        "\nexactly the trade-off space the two-level template exposes."
    )


if __name__ == "__main__":
    main()
