#!/usr/bin/env python3
"""SoC memory partitioning: the Section V-B case study, interactively.

Given 1 MB of spare SRAM, should it go to the accelerators' private
scratchpads or to the shared L2?  Runs ResNet-50 on single- and dual-core
SoCs under the three Figure 9 configurations and prints per-layer-type
speedups — the dual-core runs execute truly concurrently, contending for
the shared L2 and DRAM channel through lockstep event interleaving.
"""

import argparse

from repro.eval.experiments import FIG9_CONFIGS, run_fig9
from repro.eval.report import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--input-hw", type=int, default=112,
                        help="CNN input resolution (224 = paper scale)")
    args = parser.parse_args()

    print("configurations (per core | shared):")
    for name, (sp, acc, l2) in FIG9_CONFIGS.items():
        print(f"  {name:6s} scratchpad {sp >> 10}KB, accumulator {acc >> 10}KB"
              f" | L2 {l2 >> 20}MB")

    result = run_fig9(input_hw=args.input_hw)

    rows = []
    for run in result.runs:
        rows.append(
            (
                run.config_name,
                run.cores,
                f"{run.total_cycles / 1e6:.2f}M",
                f"{result.speedup(run.config_name, run.cores):.3f}",
                f"{result.speedup(run.config_name, run.cores, 'conv'):.3f}",
                f"{result.speedup(run.config_name, run.cores, 'resadd'):.3f}",
                f"{run.l2_miss_rate:.3f}",
            )
        )
    print()
    print(
        format_table(
            ["config", "cores", "cycles", "overall", "conv", "resadd", "L2 miss"],
            rows,
            title=f"ResNet-50 @{args.input_hw}px, normalized to Base per core count",
        )
    )
    print(
        "\nThe dual-core story: two ResNet-50 processes evict each other's"
        "\nresidual-addition inputs from the shared L2; growing the L2"
        "\n(BigL2) relieves that contention, while growing the scratchpads"
        "\n(BigSP) mostly helps the compute-bound convolutions."
    )


if __name__ == "__main__":
    main()
