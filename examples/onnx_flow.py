#!/usr/bin/env python3
"""The push-button model flow: file in, performance report out.

Demonstrates the ONNX-subset JSON model format: export a network to a
portable model file, load it back (as a deployment system would), compile
it for two different generated accelerators, and compare — the "DNN
application practitioner" workflow from Section III-B, where the hardware
details stay hidden behind the model file.
"""

import tempfile

from repro.core import default_config
from repro.core.config import GemminiConfig
from repro.core.generator import SoftwareParams
from repro.eval.report import format_table
from repro.models import build_mobilenetv2
from repro.soc.soc import make_soc
from repro.sw.compiler import compile_graph
from repro.sw.onnx_json import load_graph, save_graph
from repro.sw.runtime import Runtime


def run_on(config: GemminiConfig, graph) -> float:
    soc = make_soc(gemmini=config)
    model = compile_graph(graph, SoftwareParams.from_config(config))
    return Runtime(soc.tile, model).run().total_cycles


def main() -> None:
    # 1. Export the model to the portable JSON format.
    graph = build_mobilenetv2(input_hw=112)
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        path = handle.name
    save_graph(graph, path)
    print(f"exported mobilenetv2 to {path}")

    # 2. Load it back, exactly as a deployment flow would.
    loaded = load_graph(path)
    assert loaded.total_macs() == graph.total_macs()
    print(f"loaded: {len(loaded.nodes)} nodes, {loaded.total_macs() / 1e6:.0f} MMACs")

    # 3. Compile and run on two different design points, no model changes.
    edge = GemminiConfig(
        mesh_rows=8, mesh_cols=8,
        sp_capacity_bytes=128 * 1024, acc_capacity_bytes=32 * 1024,
        has_im2col=True,
    )
    cloud = default_config().with_im2col(True)

    rows = []
    for name, config in (("edge 8x8", edge), ("cloud 16x16", cloud)):
        cycles = run_on(config, loaded)
        rows.append((name, config.describe(), f"{cycles / 1e6:.2f}M",
                     f"{1e9 / cycles:.1f}"))
    print()
    print(format_table(
        ["target", "configuration", "cycles", "fps @1GHz"],
        rows,
        title="One model file, two generated accelerators",
    ))


if __name__ == "__main__":
    main()
