#!/usr/bin/env python3
"""Virtual-memory co-design: reproduce the Section V-A methodology.

Sweeps private TLB sizes with and without the read/write filter registers
on a CNN inference, printing normalized performance and hit rates — the
workflow that led the paper to a 4-entry private TLB + filter registers
reaching within 2% of peak performance.
"""

import argparse

from repro.core.config import edge_config
from repro.core.generator import SoftwareParams
from repro.eval.report import format_table
from repro.models import build_squeezenet
from repro.soc.soc import make_soc
from repro.sw.compiler import compile_graph
from repro.sw.runtime import Runtime


def measure(private_entries: int, filters: bool, graph):
    config = edge_config(
        private_tlb_entries=private_entries,
        shared_tlb_entries=0,
        filter_registers=filters,
    ).with_im2col(True)
    soc = make_soc(gemmini=config)
    model = compile_graph(graph, SoftwareParams.from_config(config))
    result = Runtime(soc.tile, model).run()
    xlat = soc.tile.accel.xlat
    return result.total_cycles, xlat


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--input-hw", type=int, default=128)
    args = parser.parse_args()
    graph = build_squeezenet(input_hw=args.input_hw)

    records = []
    for filters in (False, True):
        for private in (2, 4, 8, 16, 32):
            cycles, xlat = measure(private, filters, graph)
            records.append(
                {
                    "filters": filters,
                    "private": private,
                    "cycles": cycles,
                    "hit": xlat.hit_rate_including_filters(),
                    "read_locality": xlat.consecutive_same_page_fraction(False),
                    "write_locality": xlat.consecutive_same_page_fraction(True),
                }
            )
    best = min(r["cycles"] for r in records)
    rows = [
        (
            "yes" if r["filters"] else "no",
            r["private"],
            f"{best / r['cycles']:.3f}",
            f"{r['hit']:.3f}",
        )
        for r in records
    ]
    print(
        format_table(
            ["filter regs", "private TLB", "norm perf", "hit rate"],
            rows,
            title=f"TLB co-design sweep (SqueezeNet @{args.input_hw}px)",
        )
    )
    sample = records[-1]
    print(
        f"\npage locality: {sample['read_locality']:.0%} of consecutive reads and "
        f"{sample['write_locality']:.0%} of consecutive writes hit the same page"
        "\n(paper: 87% / 83%) — which is why two filter registers make a"
        "\n4-entry private TLB nearly free."
    )


if __name__ == "__main__":
    main()
