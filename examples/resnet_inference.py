#!/usr/bin/env python3
"""End-to-end CNN inference: the push-button high-level flow.

Builds ResNet-50 as an ONNX-subset graph, compiles it for a generated
accelerator (batch-norm folding, activation/pooling fusion, placement),
executes it on a full SoC — DMA through the shared L2 and DRAM, TLB
translation on every transfer — and reports the per-layer-type breakdown
plus the speedup over the in-order host CPU, Figure 7 style.

Run with ``--full`` for the paper's 224x224 resolution (about a minute of
simulation); the default 112x112 finishes in seconds.
"""

import argparse

from repro.core import default_config
from repro.core.generator import SoftwareParams
from repro.models import build_resnet50
from repro.soc.cpu import ROCKET
from repro.soc.soc import make_soc
from repro.sw.compiler import compile_graph
from repro.sw.cpu_reference import cpu_graph_cycles
from repro.sw.runtime import Runtime


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="run at 224x224")
    args = parser.parse_args()
    input_hw = 224 if args.full else 112

    config = default_config().with_im2col(True)
    soc = make_soc(gemmini=config)
    graph = build_resnet50(input_hw=input_hw)
    print(f"ResNet-50 @ {input_hw}x{input_hw}: {graph.total_macs() / 1e9:.2f} GMACs, "
          f"{graph.total_weight_bytes() / 1e6:.1f} MB weights")

    model = compile_graph(graph, SoftwareParams.from_config(config))
    print(model.summary())

    result = Runtime(soc.tile, model).run()
    print(f"\naccelerator: {result.total_cycles / 1e6:.2f} Mcycles "
          f"-> {result.fps(config.clock_ghz):.1f} FPS at {config.clock_ghz} GHz")

    print("\nper-layer-type breakdown (marginal cycles):")
    for kind, cycles in sorted(result.cycles_by_kind().items(), key=lambda kv: -kv[1]):
        share = 100 * cycles / result.total_cycles
        print(f"  {kind:10s} {cycles / 1e6:8.2f}M  {share:5.1f}%")

    baseline = cpu_graph_cycles(graph, ROCKET)
    print(f"\nin-order CPU baseline: {baseline / 1e9:.1f} Gcycles")
    print(f"speedup: {baseline / result.total_cycles:,.0f}x "
          f"(paper at 224x224: 2,670x)")

    l2 = soc.mem.l2
    print(f"\nshared L2: {l2.miss_rate():.1%} miss rate, "
          f"DRAM traffic {soc.mem.dram.bytes_moved / 1e6:.1f} MB")
    xlat = soc.tile.accel.xlat
    print(f"accelerator TLB: {xlat.stats.value('requests')} requests, "
          f"{xlat.hit_rate_including_filters():.1%} served privately")


if __name__ == "__main__":
    main()
