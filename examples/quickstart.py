#!/usr/bin/env python3
"""Quickstart: generate an accelerator, program it, check the results.

This walks the full low-level path in under a minute:

1. configure the architectural template and run the generator,
2. inspect the generated ``gemmini_params.h``,
3. build a tiled matmul with the gemmini.h-style intrinsics,
4. execute it instruction by instruction on the simulated accelerator,
5. verify the int8 results against NumPy and read out the cycle count.
"""

import numpy as np

from repro.core import GemminiConfig, generate
from repro.sw.lowlevel import GemminiProgramBuilder


def main() -> None:
    # 1. A small template instance: 8x8 PEs, fully pipelined (systolic).
    config = GemminiConfig(
        mesh_rows=8,
        mesh_cols=8,
        sp_capacity_bytes=64 * 1024,
        sp_banks=4,
        acc_capacity_bytes=32 * 1024,
        acc_banks=2,
    )
    generated = generate(config)
    print("generated:", config.describe())

    # 2. The companion C header the software stack compiles against.
    header_head = "\n".join(generated.header.splitlines()[8:16])
    print("\ngemmini_params.h (excerpt):")
    print(header_head)

    # 3. A tiled 24x24x24 matmul via the low-level intrinsics.
    m = k = n = 24
    rng = np.random.default_rng(7)
    a = rng.integers(-8, 8, size=(m, k)).astype(np.int8)
    b = rng.integers(-8, 8, size=(k, n)).astype(np.int8)

    accel = generated.instantiate()
    a_addr, b_addr, c_addr = 0x1_0000, 0x2_0000, 0x3_0000
    accel.host.write_matrix(a_addr, a, k)
    accel.host.write_matrix(b_addr, b, n)

    builder = GemminiProgramBuilder(config)
    builder.tiled_matmul_auto(a_addr, b_addr, c_addr, m, k, n)
    program = builder.build()
    print(f"\nprogram: {len(program)} RoCC instructions")

    # 4. Execute with full functional semantics and cycle bookkeeping.
    result = accel.run_program(program)

    # 5. Verify against NumPy (saturating int8 output).
    out = accel.host.read_matrix(c_addr, m, n, n, np.int8)
    expected = np.clip(a.astype(np.int32) @ b.astype(np.int32), -128, 127).astype(np.int8)
    assert (out == expected).all(), "accelerator result mismatch!"
    macs = m * k * n
    print(f"verified {m}x{k}x{n} int8 matmul against NumPy")
    print(
        f"cycles: {result.cycles:.0f} "
        f"({macs / result.cycles:.1f} MACs/cycle of {config.num_pes} peak)"
    )
    print(f"TLB requests: {accel.xlat.stats.value('requests')}, "
          f"DMA bytes: {accel.dma.stats.value('bytes_read') + accel.dma.stats.value('bytes_written')}")


if __name__ == "__main__":
    main()
