"""Two-tenant interference study, in the spirit of the paper's Fig. 9c.

The paper's dual-controller experiment runs two ResNet50s to completion and
watches the shared L2/DRAM slow both down.  Here the same SoC machinery is
driven by *traffic*: each tenant is a Poisson request stream pinned to its
own tile, so any latency inflation in the co-located run comes purely from
shared-memory contention (no cross-tenant queueing); an L2-capacity sweep
then shows how much of the tail a bigger cache can buy back.

SoCs are declared with the component API: a ``SoCDesign`` lists
``TileComponent`` entries (each tile class with its own accelerator config
and replication count) plus the shared ``CacheComponent``/``DRAMComponent``
substrate, and ``simulate_serving(..., design=...)`` serves traffic on it.

Run:  PYTHONPATH=src python examples/serving_study.py
      REPRO_FAST=1 shrinks the workload for smoke runs.
"""

from __future__ import annotations

import argparse
import os
from dataclasses import replace

from repro.eval.report import format_table
from repro.mem.cache import CacheConfig
from repro.serve import TenantSpec, TrafficProfile, simulate_serving
from repro.soc import CacheComponent, DRAMComponent, SoCDesign, TileComponent

FAST = bool(int(os.environ.get("REPRO_FAST", "0")))
SEED = 0
RATE_QPS = 150.0

parser = argparse.ArgumentParser(description=__doc__)
parser.add_argument(
    "--input-hw", type=int, default=32 if FAST else 64, help="CNN input resolution"
)
parser.add_argument(
    "--requests", type=int, default=4 if FAST else 8, help="requests per tenant"
)
ARGS = parser.parse_args()
REQUESTS = ARGS.requests
INPUT_HW = ARGS.input_hw

TENANT_A = TenantSpec(
    name="teamA",
    model="squeezenet",
    arrival="poisson",
    rate_qps=RATE_QPS,
    num_requests=REQUESTS,
    input_hw=INPUT_HW,
    slo_ms=15.0,
    pin_tile=0,
)
TENANT_B = TenantSpec(
    name="teamB",
    model="mobilenetv2",
    arrival="poisson",
    rate_qps=RATE_QPS,
    num_requests=REQUESTS,
    input_hw=INPUT_HW,
    slo_ms=15.0,
    pin_tile=1,
)


def design_with_l2(l2: CacheConfig, num_tiles: int) -> SoCDesign:
    """A homogeneous component design: one tile class, shared L2 + DRAM."""
    return SoCDesign(
        components=(
            TileComponent(count=num_tiles),
            CacheComponent(l2=l2),
            DRAMComponent(),
        ),
        name=f"l2-{l2.size_bytes >> 20}mb-x{num_tiles}",
    )


L2_CONFIGS = {
    "Base (1 MB L2)": CacheConfig(size_bytes=1 << 20, ways=8),
    "BigL2 (2 MB L2)": CacheConfig(size_bytes=2 << 20, ways=8),
}


def isolated_p99(tenant: TenantSpec, l2: CacheConfig) -> float:
    """One tenant alone on a single-tile SoC: no contention, no cross-queueing."""
    profile = TrafficProfile(
        tenants=(replace(tenant, pin_tile=0),), num_tiles=1, seed=SEED
    )
    result = simulate_serving(profile, design=design_with_l2(l2, num_tiles=1))
    return result.report.tenant(tenant.name).p99_ms


def main() -> None:
    rows = []
    for mem_name, l2 in L2_CONFIGS.items():
        iso_a = isolated_p99(TENANT_A, l2)
        iso_b = isolated_p99(TENANT_B, l2)
        co = simulate_serving(
            TrafficProfile(tenants=(TENANT_A, TENANT_B), num_tiles=2, seed=SEED),
            design=design_with_l2(l2, num_tiles=2),
        )
        co_a = co.report.tenant(TENANT_A.name).p99_ms
        co_b = co.report.tenant(TENANT_B.name).p99_ms
        rows.append(
            (
                mem_name,
                f"{iso_a:.2f}",
                f"{co_a:.2f}",
                f"{co_a / iso_a:.2f}x",
                f"{iso_b:.2f}",
                f"{co_b:.2f}",
                f"{co_b / iso_b:.2f}x",
                f"{co.l2_miss_rate:.1%}",
            )
        )
    print(
        format_table(
            [
                "memory system",
                "A alone p99",
                "A co-loc p99",
                "A inflation",
                "B alone p99",
                "B co-loc p99",
                "B inflation",
                "L2 miss",
            ],
            rows,
            title=(
                f"tail-latency interference: pinned tenants, Poisson {RATE_QPS:.0f} QPS "
                f"each, seed {SEED} (latencies in ms)"
            ),
        )
    )
    print(
        "\nEach tenant owns a tile, so its queue never mixes with the other's —\n"
        "the p99 inflation above is pure shared-L2/DRAM contention (the Fig. 9c\n"
        "mechanism, traffic-driven).  The L2 sweep shows how much of the tail a\n"
        "bigger cache buys back at this working-set size: watch the miss rate."
    )

    # -- heterogeneous coda: big/little fleet under open traffic ----------- #
    from repro.core.config import default_config

    big_little = SoCDesign(
        components=(
            TileComponent(gemmini=default_config().with_geometry(32, 1), name="big"),
            TileComponent(gemmini=default_config().with_geometry(8, 1), name="little"),
            CacheComponent(l2=L2_CONFIGS["Base (1 MB L2)"]),
            DRAMComponent(),
        ),
        name="big-little",
    )
    mixed = simulate_serving(
        TrafficProfile(
            tenants=(
                replace(TENANT_A, pin_tile=None),
                replace(TENANT_B, pin_tile=None),
            ),
            num_tiles=2,
            scheduler="sjf",
            seed=SEED,
        ),
        design=big_little,
    )
    print(
        f"\nbig/little ({big_little.describe()}):\n"
        f"SJF on per-tile cost estimates serves the same traffic at "
        f"p99 {mixed.report.overall.p99_ms:.2f} ms, "
        f"goodput {mixed.report.overall.goodput_qps:.1f} QPS "
        f"({mixed.replayed} trace-replayed)."
    )


if __name__ == "__main__":
    main()
