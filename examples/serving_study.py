"""Two-tenant interference study, in the spirit of the paper's Fig. 9c.

The paper's dual-controller experiment runs two ResNet50s to completion and
watches the shared L2/DRAM slow both down.  Here the same SoC machinery is
driven by *traffic*: each tenant is a Poisson request stream pinned to its
own tile, so any latency inflation in the co-located run comes purely from
shared-memory contention (no cross-tenant queueing); an L2-capacity sweep
then shows how much of the tail a bigger cache can buy back.

Run:  PYTHONPATH=src python examples/serving_study.py
"""

from __future__ import annotations

import argparse
from dataclasses import replace

from repro.core.config import default_config
from repro.eval.report import format_table
from repro.mem.cache import CacheConfig
from repro.mem.hierarchy import MemorySystemConfig
from repro.serve import TenantSpec, TrafficProfile, simulate_serving

SEED = 0
RATE_QPS = 150.0

parser = argparse.ArgumentParser(description=__doc__)
parser.add_argument("--input-hw", type=int, default=64, help="CNN input resolution")
parser.add_argument("--requests", type=int, default=8, help="requests per tenant")
ARGS = parser.parse_args()
REQUESTS = ARGS.requests
INPUT_HW = ARGS.input_hw

TENANT_A = TenantSpec(
    name="teamA",
    model="squeezenet",
    arrival="poisson",
    rate_qps=RATE_QPS,
    num_requests=REQUESTS,
    input_hw=INPUT_HW,
    slo_ms=15.0,
    pin_tile=0,
)
TENANT_B = TenantSpec(
    name="teamB",
    model="mobilenetv2",
    arrival="poisson",
    rate_qps=RATE_QPS,
    num_requests=REQUESTS,
    input_hw=INPUT_HW,
    slo_ms=15.0,
    pin_tile=1,
)

L2_CONFIGS = {
    "Base (1 MB L2)": MemorySystemConfig(l2=CacheConfig(size_bytes=1 << 20, ways=8)),
    "BigL2 (2 MB L2)": MemorySystemConfig(l2=CacheConfig(size_bytes=2 << 20, ways=8)),
}


def isolated_p99(tenant: TenantSpec, mem: MemorySystemConfig) -> float:
    """One tenant alone on a single-tile SoC: no contention, no cross-queueing."""
    profile = TrafficProfile(
        tenants=(replace(tenant, pin_tile=0),), num_tiles=1, seed=SEED
    )
    result = simulate_serving(profile, gemmini=default_config(), mem=mem)
    return result.report.tenant(tenant.name).p99_ms


def main() -> None:
    rows = []
    for mem_name, mem in L2_CONFIGS.items():
        iso_a = isolated_p99(TENANT_A, mem)
        iso_b = isolated_p99(TENANT_B, mem)
        co = simulate_serving(
            TrafficProfile(tenants=(TENANT_A, TENANT_B), num_tiles=2, seed=SEED),
            gemmini=default_config(),
            mem=mem,
        )
        co_a = co.report.tenant(TENANT_A.name).p99_ms
        co_b = co.report.tenant(TENANT_B.name).p99_ms
        rows.append(
            (
                mem_name,
                f"{iso_a:.2f}",
                f"{co_a:.2f}",
                f"{co_a / iso_a:.2f}x",
                f"{iso_b:.2f}",
                f"{co_b:.2f}",
                f"{co_b / iso_b:.2f}x",
                f"{co.l2_miss_rate:.1%}",
            )
        )
    print(
        format_table(
            [
                "memory system",
                "A alone p99",
                "A co-loc p99",
                "A inflation",
                "B alone p99",
                "B co-loc p99",
                "B inflation",
                "L2 miss",
            ],
            rows,
            title=(
                f"tail-latency interference: pinned tenants, Poisson {RATE_QPS:.0f} QPS "
                f"each, seed {SEED} (latencies in ms)"
            ),
        )
    )
    print(
        "\nEach tenant owns a tile, so its queue never mixes with the other's —\n"
        "the p99 inflation above is pure shared-L2/DRAM contention (the Fig. 9c\n"
        "mechanism, traffic-driven).  The L2 sweep shows how much of the tail a\n"
        "bigger cache buys back at this working-set size: watch the miss rate."
    )


if __name__ == "__main__":
    main()
